// Keplerian orbital mechanics (hand-rolled, spherical Earth).
//
// The reference constellation flies circular LEO orbits, but the propagator
// supports general elliptical elements so the library is usable beyond the
// paper's case study. Two-body motion plus optional J2 SECULAR rates (node
// regression, perigee drift, mean-motion correction): the paper's geometric
// analysis (Tr, Tc) assumes ideal repeating geometry, and the J2 option
// exists precisely to quantify that idealization
// (bench/ablation_ideal_geometry). Short-periodic J2 terms and drag are out
// of scope.
#pragma once

#include "common/units.hpp"
#include "geom/geodesy.hpp"
#include "geom/vec3.hpp"

namespace oaq {

/// Position/velocity pair in the ECI frame (km, km/s).
struct StateVector {
  Vec3 position_km;
  Vec3 velocity_km_s;
};

/// Classical orbital elements at epoch t = 0.
struct KeplerianElements {
  double semi_major_km = 0.0;     ///< semi-major axis a > Earth radius
  double eccentricity = 0.0;      ///< e in [0, 1)
  double inclination_rad = 0.0;   ///< i in [0, π]
  double raan_rad = 0.0;          ///< right ascension of ascending node Ω
  double arg_perigee_rad = 0.0;   ///< argument of perigee ω
  double mean_anomaly_rad = 0.0;  ///< mean anomaly M at epoch
};

/// Solve Kepler's equation M = E − e·sin E for the eccentric anomaly E.
/// Newton iteration; converges for all e in [0, 1).
[[nodiscard]] double solve_kepler(double mean_anomaly_rad, double eccentricity,
                                  double tol = 1e-13);

/// Two-body propagator for one satellite.
class Orbit {
 public:
  explicit Orbit(const KeplerianElements& elements);

  /// Circular orbit factory: altitude above the spherical Earth surface,
  /// inclination, node, and initial argument of latitude u0 (angle from the
  /// ascending node along the orbit at epoch).
  [[nodiscard]] static Orbit circular(double altitude_km,
                                      double inclination_rad, double raan_rad,
                                      double arg_latitude_rad);

  /// Circular orbit with the given period instead of altitude.
  [[nodiscard]] static Orbit circular_with_period(Duration period,
                                                  double inclination_rad,
                                                  double raan_rad,
                                                  double arg_latitude_rad);

  [[nodiscard]] const KeplerianElements& elements() const { return elements_; }
  [[nodiscard]] Duration period() const;
  /// Mean motion n, rad/s.
  [[nodiscard]] double mean_motion_rad_s() const { return mean_motion_; }

  /// ECI state at elapsed time `t` since epoch.
  [[nodiscard]] StateVector state_at(Duration t) const;

  /// ECI position only (cheaper call for coverage scans).
  [[nodiscard]] Vec3 position_eci(Duration t) const;

  /// Sub-satellite point. When `earth_rotation` is true the ECI position is
  /// rotated into ECEF first; otherwise the ground track repeats every orbit
  /// (the idealization behind the paper's revisit-time analysis).
  [[nodiscard]] GeoPoint subsatellite_point(Duration t,
                                            bool earth_rotation = false) const;

  /// Semi-major axis for a circular orbit of the given period.
  [[nodiscard]] static double semi_major_for_period(Duration period);

  /// Enable J2 secular perturbations: the returned orbit's node, argument
  /// of perigee and mean anomaly drift at the standard secular rates.
  [[nodiscard]] Orbit with_j2() const;

  /// Secular rates (rad/s) under J2 for these elements:
  /// {dΩ/dt, dω/dt, dM/dt correction}.
  struct SecularRates {
    double raan_rate = 0.0;
    double arg_perigee_rate = 0.0;
    double mean_anomaly_rate = 0.0;
  };
  [[nodiscard]] SecularRates j2_secular_rates() const;

  [[nodiscard]] bool j2_enabled() const { return j2_; }

  /// Precomputed perifocal→ECI rotation columns (images of the perifocal
  /// x and y axes). Exposed so the batched kernel (orbit/batch_kepler)
  /// reuses the exact same values instead of re-deriving them — a
  /// prerequisite of its bit-identity contract with this propagator.
  [[nodiscard]] const Vec3& perifocal_x_eci() const { return p_hat_; }
  [[nodiscard]] const Vec3& perifocal_y_eci() const { return q_hat_; }

 private:
  /// Elements propagated to time t (secular drift applied when enabled).
  [[nodiscard]] const Orbit& self_or_drifted(Duration t, Orbit& scratch) const;

  KeplerianElements elements_;
  double mean_motion_ = 0.0;  // rad/s
  bool j2_ = false;
  // Precomputed perifocal→ECI rotation columns.
  Vec3 p_hat_;  // toward perigee
  Vec3 q_hat_;  // 90° ahead in the orbit plane
};

}  // namespace oaq
