// Footprint model: the spherical cap a satellite's sensor covers.
//
// The paper parameterizes footprints by the coverage time Tc (the longest
// time a ground point stays inside a single footprint — 9 min for the
// reference constellation). For an orbit of period θ, the footprint's
// angular radius is ψ = π·Tc/θ: the cap's along-track angular diameter 2ψ
// is traversed at angular rate 2π/θ, so the transit takes Tc.
#pragma once

#include "common/units.hpp"
#include "geom/spherical_cap.hpp"
#include "orbit/kepler.hpp"

namespace oaq {

/// Sensor footprint attached to a satellite orbit.
class FootprintModel {
 public:
  /// Footprint with explicit angular radius ψ (radians).
  explicit FootprintModel(double angular_radius_rad);

  /// Footprint sized so a centerline point is covered for `coverage_time`
  /// by a satellite with orbit period `period`.
  [[nodiscard]] static FootprintModel from_coverage_time(Duration coverage_time,
                                                         Duration period);

  [[nodiscard]] double angular_radius_rad() const { return psi_; }

  /// Coverage time for a centerline pass given the orbit period.
  [[nodiscard]] Duration coverage_time(Duration period) const;

  /// The cap covered by a satellite at `subsat` (sub-satellite point).
  [[nodiscard]] SphericalCap cap_at(const GeoPoint& subsat) const;

  /// True when a satellite whose sub-satellite point is `subsat` covers `p`.
  [[nodiscard]] bool covers(const GeoPoint& subsat, const GeoPoint& p) const;

 private:
  double psi_;
};

}  // namespace oaq
