// Constellation assembly, including the paper's JPL reference design.
//
// A constellation is one or more Walker-style *shells* (ISSUE 8): each
// shell contributes a contiguous range of global plane indices, with its
// own period, inclination, phasing, and footprint. Single-shell
// constellations — everything the engine built before multi-shell support
// — are the one-element special case, and the legacy accessors
// (`design()`, `footprint()`) keep reporting shell 0 so pre-shell call
// sites read unchanged.
#pragma once

#include <vector>

#include "common/plane_set.hpp"
#include "orbit/footprint.hpp"
#include "orbit/plane.hpp"

namespace oaq {

/// Parameters of one Walker-style shell.
struct ConstellationDesign {
  int num_planes = 7;
  int sats_per_plane = 14;        ///< active satellites per plane
  int in_orbit_spares_per_plane = 2;
  Duration period = Duration::minutes(90);
  Duration coverage_time = Duration::minutes(9);  ///< Tc
  double inclination_rad = deg2rad(85.0);
  /// Total spread of ascending nodes. π gives a Walker-star (polar-style)
  /// pattern, 2π a Walker-delta pattern.
  double raan_spread_rad = kPi;
  /// Inter-plane phasing factor F: plane j's ring is advanced by
  /// F·j·2π/(num_planes·sats_per_plane).
  int phasing_factor = 1;
  /// Propagate with J2 secular perturbations (node/perigee/phase drift).
  bool j2 = false;
};

/// A LEO constellation as a set of orbital planes grouped into shells.
class Constellation {
 public:
  explicit Constellation(const ConstellationDesign& design);

  /// Multi-shell composition. Shells occupy contiguous global plane-index
  /// ranges in order: shell s's planes are
  /// [shell_first_plane(s), shell_first_plane(s) + shell_plane_count(s)).
  /// Requires at least one shell and at most PlaneSet::kMaxPlanes planes
  /// in total (the fault layer's addressable range).
  explicit Constellation(const std::vector<ConstellationDesign>& shells);

  /// The paper's reference RF-geolocation constellation: 7 planes ×
  /// (14 active + 2 in-orbit spares), θ = 90 min, Tc = 9 min (ψ = 18°).
  [[nodiscard]] static Constellation reference();

  /// Shell 0's design — the whole design for single-shell constellations.
  [[nodiscard]] const ConstellationDesign& design() const {
    return shells_[0].design;
  }
  [[nodiscard]] int num_planes() const {
    return static_cast<int>(planes_.size());
  }
  [[nodiscard]] const OrbitalPlane& plane(int i) const;
  [[nodiscard]] OrbitalPlane& plane(int i);
  /// Shell 0's footprint. Multi-shell geometry queries must use
  /// footprint_of_plane — shells differ in altitude and ψ.
  [[nodiscard]] const FootprintModel& footprint() const {
    return shells_[0].footprint;
  }

  // --- Shell metadata (ISSUE 8). ---
  [[nodiscard]] int num_shells() const {
    return static_cast<int>(shells_.size());
  }
  [[nodiscard]] const ConstellationDesign& shell_design(int s) const;
  /// Global index of shell `s`'s first plane.
  [[nodiscard]] int shell_first_plane(int s) const;
  [[nodiscard]] int shell_plane_count(int s) const;
  /// Shell owning global plane index `plane`.
  [[nodiscard]] int shell_of_plane(int plane) const;
  /// Footprint of the shell owning global plane index `plane`.
  [[nodiscard]] const FootprintModel& footprint_of_plane(int plane) const;
  /// Longest shell period — the phase-jitter span of geometric
  /// Monte-Carlo runs (equals design().period for single-shell designs,
  /// so pre-shell golden bytes are preserved).
  [[nodiscard]] Duration max_period() const;

  /// Total number of active satellites across planes.
  [[nodiscard]] int total_active() const;

  /// All active satellites.
  [[nodiscard]] std::vector<SatelliteId> active_satellites() const;

  /// Sub-satellite point of an active satellite.
  [[nodiscard]] GeoPoint subsatellite_point(SatelliteId id, Duration t,
                                            bool earth_rotation = false) const;

  /// Satellites whose footprints cover `p` at time `t`.
  [[nodiscard]] std::vector<SatelliteId> covering_satellites(
      const GeoPoint& p, Duration t, bool earth_rotation = false) const;

 private:
  struct Shell {
    ConstellationDesign design;
    int first_plane = 0;
    FootprintModel footprint;
  };

  std::vector<Shell> shells_;
  std::vector<OrbitalPlane> planes_;  ///< global plane index order
};

}  // namespace oaq
