// Constellation assembly, including the paper's JPL reference design.
#pragma once

#include <vector>

#include "orbit/footprint.hpp"
#include "orbit/plane.hpp"

namespace oaq {

/// Parameters of a Walker-style constellation.
struct ConstellationDesign {
  int num_planes = 7;
  int sats_per_plane = 14;        ///< active satellites per plane
  int in_orbit_spares_per_plane = 2;
  Duration period = Duration::minutes(90);
  Duration coverage_time = Duration::minutes(9);  ///< Tc
  double inclination_rad = deg2rad(85.0);
  /// Total spread of ascending nodes. π gives a Walker-star (polar-style)
  /// pattern, 2π a Walker-delta pattern.
  double raan_spread_rad = kPi;
  /// Inter-plane phasing factor F: plane j's ring is advanced by
  /// F·j·2π/(num_planes·sats_per_plane).
  int phasing_factor = 1;
  /// Propagate with J2 secular perturbations (node/perigee/phase drift).
  bool j2 = false;
};

/// A LEO constellation as a set of orbital planes plus a footprint model.
class Constellation {
 public:
  explicit Constellation(const ConstellationDesign& design);

  /// The paper's reference RF-geolocation constellation: 7 planes ×
  /// (14 active + 2 in-orbit spares), θ = 90 min, Tc = 9 min (ψ = 18°).
  [[nodiscard]] static Constellation reference();

  [[nodiscard]] const ConstellationDesign& design() const { return design_; }
  [[nodiscard]] int num_planes() const { return static_cast<int>(planes_.size()); }
  [[nodiscard]] const OrbitalPlane& plane(int i) const;
  [[nodiscard]] OrbitalPlane& plane(int i);
  [[nodiscard]] const FootprintModel& footprint() const { return footprint_; }

  /// Total number of active satellites across planes.
  [[nodiscard]] int total_active() const;

  /// All active satellites.
  [[nodiscard]] std::vector<SatelliteId> active_satellites() const;

  /// Sub-satellite point of an active satellite.
  [[nodiscard]] GeoPoint subsatellite_point(SatelliteId id, Duration t,
                                            bool earth_rotation = false) const;

  /// Satellites whose footprints cover `p` at time `t`.
  [[nodiscard]] std::vector<SatelliteId> covering_satellites(
      const GeoPoint& p, Duration t, bool earth_rotation = false) const;

 private:
  ConstellationDesign design_;
  std::vector<OrbitalPlane> planes_;
  FootprintModel footprint_;
};

}  // namespace oaq
