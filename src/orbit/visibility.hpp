// Pass prediction: when does which satellite cover a ground point?
//
// This extracts, from true constellation geometry, the α/β/γ interval
// structure that the paper's Fig. 6 timing diagrams idealize: single-
// coverage stretches, overlap windows (simultaneous multiple coverage) and
// gaps. The protocol simulator and the analytic model are cross-validated
// against these intervals.
#pragma once

#include <vector>

#include "orbit/constellation.hpp"

namespace oaq {

/// One contiguous interval during which a single satellite's footprint
/// covers the target point.
struct Pass {
  SatelliteId satellite;
  Duration start{};
  Duration end{};

  [[nodiscard]] Duration duration() const { return end - start; }
};

/// A maximal interval with a constant set of covering satellites.
struct CoverageSegment {
  Duration start{};
  Duration end{};
  std::vector<SatelliteId> satellites;

  [[nodiscard]] int multiplicity() const {
    return static_cast<int>(satellites.size());
  }
  [[nodiscard]] Duration duration() const { return end - start; }
};

/// Aggregate coverage statistics over a horizon.
struct CoverageStats {
  Duration horizon{};
  Duration uncovered{};       ///< total gap time
  Duration single{};          ///< covered by exactly one satellite
  Duration multiple{};        ///< covered by two or more satellites
  Duration longest_gap{};
  Duration longest_single_pass{};
  int max_multiplicity = 0;
};

/// Predicts satellite passes over ground points for a constellation.
class PassPredictor {
 public:
  /// `earth_rotation` selects whether targets rotate with the Earth; the
  /// paper's periodic revisit analysis corresponds to `false`.
  explicit PassPredictor(const Constellation& constellation,
                         bool earth_rotation = false);

  /// All passes over `target` within [t0, t1], sorted by start time.
  /// Boundary crossings are refined to `tol` by bisection/Brent.
  [[nodiscard]] std::vector<Pass> passes(const GeoPoint& target, Duration t0,
                                         Duration t1,
                                         Duration tol = Duration::seconds(0.01)) const;

  /// Partition [t0, t1] into segments of constant covering-satellite sets.
  [[nodiscard]] static std::vector<CoverageSegment> multiplicity_timeline(
      const std::vector<Pass>& passes, Duration t0, Duration t1);

  /// Summarize a timeline into coverage statistics.
  [[nodiscard]] static CoverageStats summarize(
      const std::vector<CoverageSegment>& timeline);

 private:
  const Constellation* constellation_;
  bool earth_rotation_;
};

}  // namespace oaq
