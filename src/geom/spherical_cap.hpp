// Spherical caps — the geometric model of a satellite footprint.
//
// The paper's footprint is "the area on the earth that is covered by a
// satellite": a spherical cap centered on the sub-satellite point whose
// angular radius ψ is fixed by the sensor. The coverage time Tc = 9 min and
// orbit period θ = 90 min give ψ = π·Tc/θ = 18° for the reference
// constellation (the cap diameter, measured in transit time, equals Tc).
#pragma once

#include "geom/geodesy.hpp"

namespace oaq {

/// A spherical cap on the unit sphere: all points within angular radius
/// `radius_rad` of `center`.
class SphericalCap {
 public:
  SphericalCap(GeoPoint center, double radius_rad);

  [[nodiscard]] const GeoPoint& center() const { return center_; }
  [[nodiscard]] double radius_rad() const { return radius_rad_; }

  /// True when `p` lies inside or on the cap boundary.
  [[nodiscard]] bool contains(const GeoPoint& p) const;

  /// Angular distance from the cap center to `p`.
  [[nodiscard]] double center_distance_rad(const GeoPoint& p) const;

  /// Cap surface area on a sphere of radius `sphere_radius_km`, in km².
  [[nodiscard]] double area_km2(double sphere_radius_km = kEarthRadiusKm) const;

  /// True when this cap and `other` overlap (share interior points).
  [[nodiscard]] bool overlaps(const SphericalCap& other) const;

  /// Area of the intersection of two caps on a sphere of radius
  /// `sphere_radius_km`, km². Exact lune-based formula.
  [[nodiscard]] double intersection_area_km2(
      const SphericalCap& other, double sphere_radius_km = kEarthRadiusKm) const;

 private:
  GeoPoint center_;
  double radius_rad_;
};

}  // namespace oaq
