#include "geom/geodesy.hpp"

#include <algorithm>
#include <cmath>

namespace oaq {

Vec3 geo_to_ecef_unit(const GeoPoint& p) {
  const double cl = std::cos(p.lat_rad);
  return {cl * std::cos(p.lon_rad), cl * std::sin(p.lon_rad),
          std::sin(p.lat_rad)};
}

Vec3 geo_to_ecef(const GeoPoint& p, double radius_km) {
  return geo_to_ecef_unit(p) * radius_km;
}

GeoPoint ecef_to_geo(const Vec3& ecef) {
  const double r = ecef.norm();
  if (r == 0.0) return {};
  return {std::asin(ecef.z / r), std::atan2(ecef.y, ecef.x)};
}

Vec3 eci_to_ecef(const Vec3& eci, Duration t) {
  const double theta = kEarthRotationRadPerS * t.to_seconds();
  const double c = std::cos(theta);
  const double s = std::sin(theta);
  // ECEF = Rz(-theta)·ECI seen from the rotating frame: rotate by -theta.
  return {c * eci.x + s * eci.y, -s * eci.x + c * eci.y, eci.z};
}

Vec3 ecef_to_eci(const Vec3& ecef, Duration t) {
  const double theta = kEarthRotationRadPerS * t.to_seconds();
  const double c = std::cos(theta);
  const double s = std::sin(theta);
  return {c * ecef.x - s * ecef.y, s * ecef.x + c * ecef.y, ecef.z};
}

double central_angle(const GeoPoint& a, const GeoPoint& b) {
  return angle_between(geo_to_ecef_unit(a), geo_to_ecef_unit(b));
}

double great_circle_km(const GeoPoint& a, const GeoPoint& b) {
  return kEarthRadiusKm * central_angle(a, b);
}

double initial_bearing(const GeoPoint& a, const GeoPoint& b) {
  const double dlon = b.lon_rad - a.lon_rad;
  const double y = std::sin(dlon) * std::cos(b.lat_rad);
  const double x = std::cos(a.lat_rad) * std::sin(b.lat_rad) -
                   std::sin(a.lat_rad) * std::cos(b.lat_rad) * std::cos(dlon);
  return wrap_two_pi(std::atan2(y, x));
}

GeoPoint destination(const GeoPoint& a, double bearing_rad, double angle_rad) {
  const double sin_lat = std::sin(a.lat_rad) * std::cos(angle_rad) +
                         std::cos(a.lat_rad) * std::sin(angle_rad) *
                             std::cos(bearing_rad);
  const double lat = std::asin(std::clamp(sin_lat, -1.0, 1.0));
  const double y = std::sin(bearing_rad) * std::sin(angle_rad) *
                   std::cos(a.lat_rad);
  const double x = std::cos(angle_rad) - std::sin(a.lat_rad) * sin_lat;
  const double lon = a.lon_rad + std::atan2(y, x);
  return {lat, wrap_pi(lon)};
}

}  // namespace oaq
