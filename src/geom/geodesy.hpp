// Hand-rolled spherical-Earth geodesy.
//
// The reproduction treats the Earth as a rotating sphere (the paper's
// geometric arguments — footprints, revisit times, coverage — are all
// spherical). Frames:
//   * ECI  — Earth-centered inertial; orbits are propagated here.
//   * ECEF — Earth-centered Earth-fixed; rotates with the Earth about +z.
//   * Geodetic — latitude (rad, +north), longitude (rad, +east).
#pragma once

#include "common/units.hpp"
#include "geom/vec3.hpp"

namespace oaq {

/// Mean Earth radius, km (spherical model).
inline constexpr double kEarthRadiusKm = 6371.0;

/// Earth gravitational parameter, km^3/s^2.
inline constexpr double kEarthMuKm3PerS2 = 398600.4418;

/// Earth sidereal rotation rate, rad/s.
inline constexpr double kEarthRotationRadPerS = 7.2921159e-5;

/// Earth J2 zonal harmonic coefficient (oblateness).
inline constexpr double kEarthJ2 = 1.08262668e-3;

/// Geodetic position on the spherical Earth.
struct GeoPoint {
  double lat_rad = 0.0;  ///< latitude in [-π/2, π/2], +north
  double lon_rad = 0.0;  ///< longitude in (-π, π], +east

  [[nodiscard]] static GeoPoint from_degrees(double lat_deg, double lon_deg) {
    return {deg2rad(lat_deg), deg2rad(lon_deg)};
  }
  [[nodiscard]] double lat_deg() const { return rad2deg(lat_rad); }
  [[nodiscard]] double lon_deg() const { return rad2deg(lon_rad); }
};

/// Geodetic → ECEF unit vector (on the sphere surface when scaled by radius).
[[nodiscard]] Vec3 geo_to_ecef_unit(const GeoPoint& p);

/// Geodetic → ECEF surface position in km.
[[nodiscard]] Vec3 geo_to_ecef(const GeoPoint& p, double radius_km = kEarthRadiusKm);

/// ECEF position → geodetic point (ignores altitude).
[[nodiscard]] GeoPoint ecef_to_geo(const Vec3& ecef);

/// Rotate an ECI position into ECEF at elapsed time `t` since the frame
/// coincidence epoch (Greenwich aligned with +x at t = 0).
[[nodiscard]] Vec3 eci_to_ecef(const Vec3& eci, Duration t);

/// Rotate an ECEF position into ECI at elapsed time `t`.
[[nodiscard]] Vec3 ecef_to_eci(const Vec3& ecef, Duration t);

/// Great-circle central angle between two points, radians in [0, π].
[[nodiscard]] double central_angle(const GeoPoint& a, const GeoPoint& b);

/// Great-circle surface distance in km.
[[nodiscard]] double great_circle_km(const GeoPoint& a, const GeoPoint& b);

/// Initial bearing from `a` toward `b` (radians clockwise from north).
[[nodiscard]] double initial_bearing(const GeoPoint& a, const GeoPoint& b);

/// Destination point after traveling `angle_rad` along `bearing_rad` from `a`.
[[nodiscard]] GeoPoint destination(const GeoPoint& a, double bearing_rad,
                                   double angle_rad);

}  // namespace oaq
