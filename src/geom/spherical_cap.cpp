#include "geom/spherical_cap.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace oaq {
namespace {

double clamped_acos(double x) { return std::acos(std::clamp(x, -1.0, 1.0)); }

}  // namespace

SphericalCap::SphericalCap(GeoPoint center, double radius_rad)
    : center_(center), radius_rad_(radius_rad) {
  OAQ_REQUIRE(radius_rad > 0.0 && radius_rad <= kPi,
              "cap angular radius must be in (0, pi]");
}

bool SphericalCap::contains(const GeoPoint& p) const {
  return center_distance_rad(p) <= radius_rad_ + 1e-12;
}

double SphericalCap::center_distance_rad(const GeoPoint& p) const {
  return central_angle(center_, p);
}

double SphericalCap::area_km2(double sphere_radius_km) const {
  return 2.0 * kPi * sphere_radius_km * sphere_radius_km *
         (1.0 - std::cos(radius_rad_));
}

bool SphericalCap::overlaps(const SphericalCap& other) const {
  return central_angle(center_, other.center_) <
         radius_rad_ + other.radius_rad_;
}

double SphericalCap::intersection_area_km2(const SphericalCap& other,
                                           double sphere_radius_km) const {
  const double t1 = radius_rad_;
  const double t2 = other.radius_rad_;
  const double td = central_angle(center_, other.center_);
  const double r2 = sphere_radius_km * sphere_radius_km;

  if (td >= t1 + t2) return 0.0;  // disjoint
  if (td <= std::abs(t1 - t2)) {
    // One cap inside the other: intersection is the smaller cap.
    const double tmin = std::min(t1, t2);
    return 2.0 * kPi * r2 * (1.0 - std::cos(tmin));
  }

  // Gauss–Bonnet on the lens: Area = 2π − 2α·cos t1 − 2β·cos t2 − 2γ,
  // with α (β) the azimuthal half-extents of the lens seen from each cap
  // axis and γ the corner angle, all from the spherical triangle
  // (axis1, axis2, crossing point).
  const double alpha = clamped_acos(
      (std::cos(t2) - std::cos(td) * std::cos(t1)) /
      (std::sin(td) * std::sin(t1)));
  const double beta = clamped_acos(
      (std::cos(t1) - std::cos(td) * std::cos(t2)) /
      (std::sin(td) * std::sin(t2)));
  const double gamma = clamped_acos(
      (std::cos(td) - std::cos(t1) * std::cos(t2)) /
      (std::sin(t1) * std::sin(t2)));
  const double area_unit = 2.0 * kPi - 2.0 * alpha * std::cos(t1) -
                           2.0 * beta * std::cos(t2) - 2.0 * gamma;
  return std::max(0.0, area_unit) * r2;
}

}  // namespace oaq
