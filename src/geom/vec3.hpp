// 3-vector used for Earth-centered coordinates and orbital state.
#pragma once

#include <cmath>
#include <ostream>

namespace oaq {

/// Plain 3-vector of doubles (kilometres when used as a position,
/// km/s when used as a velocity).
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3& operator+=(const Vec3& o) {
    x += o.x; y += o.y; z += o.z;
    return *this;
  }
  constexpr Vec3& operator-=(const Vec3& o) {
    x -= o.x; y -= o.y; z -= o.z;
    return *this;
  }
  constexpr Vec3& operator*=(double k) {
    x *= k; y *= k; z *= k;
    return *this;
  }

  friend constexpr Vec3 operator+(Vec3 a, const Vec3& b) { return a += b; }
  friend constexpr Vec3 operator-(Vec3 a, const Vec3& b) { return a -= b; }
  friend constexpr Vec3 operator*(Vec3 a, double k) { return a *= k; }
  friend constexpr Vec3 operator*(double k, Vec3 a) { return a *= k; }
  friend constexpr Vec3 operator/(Vec3 a, double k) { return a *= (1.0 / k); }
  friend constexpr Vec3 operator-(const Vec3& a) { return {-a.x, -a.y, -a.z}; }
  friend constexpr bool operator==(const Vec3&, const Vec3&) = default;

  [[nodiscard]] constexpr double dot(const Vec3& o) const {
    return x * o.x + y * o.y + z * o.z;
  }
  [[nodiscard]] constexpr Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  [[nodiscard]] double norm() const { return std::sqrt(dot(*this)); }
  [[nodiscard]] constexpr double norm2() const { return dot(*this); }
  [[nodiscard]] Vec3 normalized() const {
    const double n = norm();
    return n > 0.0 ? *this / n : Vec3{};
  }

  friend std::ostream& operator<<(std::ostream& os, const Vec3& v) {
    return os << '(' << v.x << ", " << v.y << ", " << v.z << ')';
  }
};

/// Angle between two nonzero vectors, in radians, numerically stable near 0/π.
[[nodiscard]] inline double angle_between(const Vec3& a, const Vec3& b) {
  // atan2 form avoids acos cancellation for nearly (anti)parallel vectors.
  return std::atan2(a.cross(b).norm(), a.dot(b));
}

}  // namespace oaq
