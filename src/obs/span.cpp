#include "obs/span.hpp"

#include <ostream>

#include "obs/jsonfmt.hpp"

namespace oaq {

void SpanProfiler::prepare(int n_shards) {
  OAQ_REQUIRE(n_shards >= 0, "shard count must be nonnegative");
  main_.clear();
  shards_.clear();
  for (int s = 0; s < n_shards; ++s) shards_.emplace_back();
}

SpanArena* SpanProfiler::shard_arena(int s) {
  OAQ_REQUIRE(s >= 0 && s < shards(), "span shard out of range");
  return &shards_[static_cast<std::size_t>(s)];
}

namespace {

/// Emits one arena as a synthetic flame: each node is a complete event
/// whose ts lays it after its earlier siblings inside its parent. Nesting
/// guarantees sum(child wall) <= parent wall, so children always fit.
void write_arena(std::ostream& os, const SpanArena& arena, int tid,
                 std::string_view thread_name, bool zero_wall, bool& first) {
  const auto emit_comma = [&os, &first] {
    if (!first) os << ',';
    first = false;
  };
  emit_comma();
  os << R"({"ph":"M","pid":0,"tid":)" << tid
     << R"(,"name":"thread_name","args":{"name":)";
  write_json_string(os, thread_name);
  os << "}}";

  const auto& nodes = arena.nodes();
  // ts of node i = parent ts + dur of earlier siblings; computed in one
  // forward pass (parents precede children in slab order by construction).
  std::vector<std::int64_t> ts(nodes.size(), 0);
  std::vector<std::int64_t> cursor(nodes.size(), 0);  // next child offset
  std::int64_t root_cursor = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const auto& n = nodes[i];
    if (n.parent < 0) {
      ts[i] = root_cursor;
      root_cursor += n.wall_ns;
    } else {
      const auto p = static_cast<std::size_t>(n.parent);
      ts[i] = ts[p] + cursor[p];
      cursor[p] += n.wall_ns;
    }
  }
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const auto& n = nodes[i];
    emit_comma();
    os << R"({"ph":"X","pid":0,"tid":)" << tid << R"(,"ts":)";
    write_json_double(os, zero_wall
                              ? 0.0
                              : static_cast<double>(ts[i]) / 1000.0);
    os << R"(,"dur":)";
    write_json_double(os, zero_wall
                              ? 0.0
                              : static_cast<double>(n.wall_ns) / 1000.0);
    os << R"(,"name":)";
    write_json_string(os, n.name);
    os << R"(,"args":{"count":)" << n.count << R"(,"items":)" << n.items
       << "}}";
  }
}

}  // namespace

void SpanProfiler::write_chrome_json(std::ostream& os, bool zero_wall) const {
  os << "{\"traceEvents\":[";
  bool first = true;
  write_arena(os, main_, 0, "main", zero_wall, first);
  for (int s = 0; s < shards(); ++s) {
    write_arena(os, shards_[static_cast<std::size_t>(s)], s + 1,
                "shard-" + std::to_string(s), zero_wall, first);
  }
  os << "]}\n";
}

}  // namespace oaq
