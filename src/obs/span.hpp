// Hierarchical span profiler (ISSUE 7 tentpole).
//
// The flat ReduceProfile answers "how long did shard s run"; it cannot say
// *where inside a shard* the time went — seed vs. freeze, batch prologue
// vs. armed-lane DES drain, protocol vs. merge. Spans answer that: nested
// named intervals recorded into per-arena call trees and exported as
// Chrome trace-event / Perfetto-compatible JSON (`oaqctl --spans`).
//
// Aggregated call-path tree, not an event log: a SpanArena node is keyed
// by (parent, name) — entering a path that already exists bumps its count
// and accumulates wall time instead of appending an event. Consequences:
//
//   * Zero steady-state allocations: the node slab and the open-span stack
//     grow only while a NEW call path is discovered (a handful per run);
//     the millionth "episode" span reuses the first one's node. Names are
//     stored inline (kSpanNameCapacity bytes, no heap), so enter/exit is a
//     child-list walk plus a clock read (bench/span_overhead gate).
//
//   * Deterministic structure: node identity is the call path, and call
//     paths are derived from the simulation's control flow — which the
//     parallel_reduce contract makes independent of the worker count. The
//     tree shape, names, `count`, and `items` fields are therefore
//     bit-identical at any `jobs`; only the wall-time fields vary. The
//     span determinism test diffs the export with wall times zeroed.
//
//   * One arena per shard plus one for the calling thread: a shard arena
//     is touched only by the worker that runs the shard (the
//     TraceCollector ownership discipline), so recording needs no
//     synchronization, and the export's arena order (main, shard 0, 1, …)
//     is fixed.
//
// Export layout: each arena becomes one Chrome "thread" (tid = arena
// index) with a thread_name metadata record; each node becomes one
// complete event ("ph":"X") whose ts places it after its earlier siblings
// inside its parent — a synthetic flame graph of accumulated inclusive
// time. `args` carries {count, items}.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstring>
#include <deque>
#include <iosfwd>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace oaq {

/// Inline span-label capacity (longer names are truncated, never heap-split).
inline constexpr std::size_t kSpanNameCapacity = 47;

/// One arena's aggregated span tree. Single-writer: the worker that owns
/// the arena records into it; readers wait for the run to finish.
class SpanArena {
 public:
  struct Node {
    char name[kSpanNameCapacity + 1] = {};
    std::int32_t parent = -1;       ///< -1 for roots
    std::int32_t first_child = -1;  ///< discovery order
    std::int32_t next_sibling = -1;
    std::int64_t count = 0;         ///< completed enters of this path
    std::int64_t items = 0;         ///< caller-supplied deterministic tally
    std::int64_t wall_ns = 0;       ///< accumulated inclusive wall time
  };

  SpanArena() { open_.reserve(16); }

  SpanArena(const SpanArena&) = delete;
  SpanArena& operator=(const SpanArena&) = delete;

  /// Open a nested span. The matching exit() must run on the same arena in
  /// LIFO order (use ScopedSpan).
  void enter(std::string_view name) {
    enter_at(name, std::chrono::steady_clock::now());
  }

  /// Close the innermost open span, accumulating its wall time.
  void exit() { exit_at(std::chrono::steady_clock::now()); }

  /// enter/exit with a caller-supplied timestamp: hot loops that span two
  /// phases back to back share ONE clock read as the first phase's end and
  /// the second's start (the batch engine's prologue/drain split), halving
  /// the profiler's per-block cost. Timestamps may be taken before the
  /// call — only the deltas matter.
  void enter_at(std::string_view name,
                std::chrono::steady_clock::time_point at) {
    const std::int32_t node = intern(name);
    open_.push_back({node, at});
  }
  void exit_at(std::chrono::steady_clock::time_point at) {
    OAQ_REQUIRE(!open_.empty(), "span exit without a matching enter");
    const OpenSpan top = open_.back();
    open_.pop_back();
    Node& n = nodes_[static_cast<std::size_t>(top.node)];
    ++n.count;
    n.wall_ns += std::chrono::duration_cast<std::chrono::nanoseconds>(
                     at - top.started)
                     .count();
  }

  /// Add `delta` to the innermost open span's deterministic item tally
  /// (lane counts, episode counts — anything jobs-independent).
  void add_items(std::int64_t delta) {
    OAQ_REQUIRE(!open_.empty(), "add_items needs an open span");
    nodes_[static_cast<std::size_t>(open_.back().node)].items += delta;
  }

  [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }
  [[nodiscard]] bool balanced() const { return open_.empty(); }

  void clear() {
    first_root_ = -1;
    nodes_.clear();
    open_.clear();
  }

 private:
  struct OpenSpan {
    std::int32_t node;
    std::chrono::steady_clock::time_point started;
  };

  /// Node of `name` under the current open span (a root when none),
  /// created on first discovery. Links are resolved by index, never by a
  /// pointer held across push_back — growth relocates the slab.
  [[nodiscard]] std::int32_t intern(std::string_view name) {
    const std::int32_t parent =
        open_.empty() ? std::int32_t{-1} : open_.back().node;
    const std::size_t len = std::min(name.size(), kSpanNameCapacity);
    std::int32_t prev = -1;
    std::int32_t cur =
        parent < 0 ? first_root_
                   : nodes_[static_cast<std::size_t>(parent)].first_child;
    while (cur >= 0) {
      const Node& candidate = nodes_[static_cast<std::size_t>(cur)];
      if (std::strlen(candidate.name) == len &&
          std::memcmp(candidate.name, name.data(), len) == 0) {
        return cur;
      }
      prev = cur;
      cur = candidate.next_sibling;
    }
    // New call path: append the node and hook it at the list tail, so
    // sibling order is discovery order (deterministic control flow).
    const auto index = static_cast<std::int32_t>(nodes_.size());
    Node n;
    std::memcpy(n.name, name.data(), len);
    n.parent = parent;
    nodes_.push_back(n);
    if (prev >= 0) {
      nodes_[static_cast<std::size_t>(prev)].next_sibling = index;
    } else if (parent >= 0) {
      nodes_[static_cast<std::size_t>(parent)].first_child = index;
    } else {
      first_root_ = index;
    }
    return index;
  }

  std::int32_t first_root_ = -1;
  std::vector<Node> nodes_;
  std::vector<OpenSpan> open_;
};

/// RAII span over a nullable arena (the disabled path is one branch).
class ScopedSpan {
 public:
  ScopedSpan(SpanArena* arena, std::string_view name) : arena_(arena) {
    if (arena_ != nullptr) arena_->enter(name);
  }
  ~ScopedSpan() {
    if (arena_ != nullptr) arena_->exit();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  SpanArena* arena_;
};

/// Owns the main-thread arena plus one arena per shard, mirroring
/// TraceCollector's prepare/shard discipline.
class SpanProfiler {
 public:
  /// Drops previous arenas and allocates `n_shards` fresh shard arenas.
  void prepare(int n_shards);

  /// The calling thread's arena (harness phases: seed, freeze, merge).
  [[nodiscard]] SpanArena* main_arena() { return &main_; }
  /// Shard `s`'s arena; owned by whichever worker runs the shard.
  [[nodiscard]] SpanArena* shard_arena(int s);

  [[nodiscard]] int shards() const { return static_cast<int>(shards_.size()); }

  /// Chrome trace-event JSON: {"traceEvents":[...]} with one synthetic
  /// flame per arena. `zero_wall` zeroes every ts/dur — the determinism
  /// tests byte-compare this form across worker counts.
  void write_chrome_json(std::ostream& os, bool zero_wall = false) const;

 private:
  SpanArena main_;
  std::deque<SpanArena> shards_;  // deque: arenas never relocate
};

}  // namespace oaq
