#include "obs/trace.hpp"

#include <algorithm>
#include <charconv>
#include <istream>
#include <ostream>

#include "common/error.hpp"
#include "obs/jsonfmt.hpp"

namespace oaq {

namespace {

struct TypeName {
  TraceEventType type;
  std::string_view name;
};

// Wire names are part of the trace schema — append-only, never renamed.
constexpr TypeName kTypeNames[] = {
    {TraceEventType::kDetection, "detection"},
    {TraceEventType::kChainHop, "chain_hop"},
    {TraceEventType::kXlinkSend, "xlink_send"},
    {TraceEventType::kXlinkRecv, "xlink_recv"},
    {TraceEventType::kXlinkDrop, "xlink_drop"},
    {TraceEventType::kWithhold, "withhold"},
    {TraceEventType::kDone, "done"},
    {TraceEventType::kWaitDeadline, "wait_deadline"},
    {TraceEventType::kAlert, "alert"},
    {TraceEventType::kAlertDelivered, "alert_delivered"},
    {TraceEventType::kTermTc1, "term_tc1"},
    {TraceEventType::kTermTc2, "term_tc2"},
    {TraceEventType::kTermTc3, "term_tc3"},
    {TraceEventType::kTermWaitDeadline, "term_wait_deadline"},
    {TraceEventType::kTermGeometry, "term_geometry"},
    {TraceEventType::kTermWindow, "term_window"},
    {TraceEventType::kTermSimultaneous, "term_simultaneous"},
    {TraceEventType::kTermPreliminary, "term_preliminary"},
    {TraceEventType::kTermBaq, "term_baq"},
    {TraceEventType::kTermLate, "term_late"},
    {TraceEventType::kXlinkRetry, "xlink_retry"},
    {TraceEventType::kFaultFailSilent, "fault_fail_silent"},
    {TraceEventType::kFaultRecover, "fault_recover"},
    {TraceEventType::kFaultLinkOutage, "fault_link_outage"},
    {TraceEventType::kFaultDelaySpike, "fault_delay_spike"},
    {TraceEventType::kFaultBurstLoss, "fault_burst_loss"},
    {TraceEventType::kFaultPartition, "fault_partition"},
    {TraceEventType::kFaultLinkLoss, "fault_link_loss"},
    {TraceEventType::kLinkDemoted, "link_demoted"},
    {TraceEventType::kLinkProbe, "link_probe"},
    {TraceEventType::kLinkRestored, "link_restored"},
};

constexpr std::string_view kDropReasonNames[] = {
    "dead_sender", "loss", "dead_receiver", "unregistered", "link_down",
};

}  // namespace

std::string_view to_string(TraceEventType type) {
  for (const auto& entry : kTypeNames) {
    if (entry.type == type) return entry.name;
  }
  return "unknown";
}

std::string_view to_string(DropReason reason) {
  const auto i = static_cast<std::size_t>(reason);
  return i < std::size(kDropReasonNames) ? kDropReasonNames[i] : "unknown";
}

std::optional<TraceEventType> trace_event_type_from(std::string_view name) {
  for (const auto& entry : kTypeNames) {
    if (entry.name == name) return entry.type;
  }
  return std::nullopt;
}

ShardTraceBuffer::ShardTraceBuffer(std::size_t capacity)
    : capacity_(capacity) {
  OAQ_REQUIRE(capacity > 0, "trace buffer capacity must be positive");
}

void ShardTraceBuffer::push(const TraceEvent& event) {
  ++recorded_;
  if (events_.size() < capacity_) {
    events_.push_back(event);
    return;
  }
  events_[head_] = event;  // overwrite the oldest: flight-recorder semantics
  head_ = (head_ + 1) % capacity_;
}

void ShardTraceBuffer::drain_into(ShardTraceBuffer& dst) {
  OAQ_REQUIRE(dropped() == 0, "drain_into requires a lossless staging buffer");
  // No wrap happened (head_ is 0), so events_ is already in push order.
  for (const TraceEvent& event : events_) dst.push(event);
  events_.clear();
  head_ = 0;
  recorded_ = 0;
}

std::vector<TraceEvent> ShardTraceBuffer::events() const {
  std::vector<TraceEvent> out;
  out.reserve(events_.size());
  for (std::size_t i = 0; i < events_.size(); ++i) {
    out.push_back(events_[(head_ + i) % events_.size()]);
  }
  return out;
}

void ShardTraceBuffer::clear() {
  events_.clear();
  head_ = 0;
  recorded_ = 0;
}

TraceCollector::TraceCollector(std::size_t capacity_per_shard)
    : capacity_(capacity_per_shard) {
  OAQ_REQUIRE(capacity_per_shard > 0,
              "trace buffer capacity must be positive");
}

void TraceCollector::prepare(int n_shards) {
  OAQ_REQUIRE(n_shards > 0, "need at least one shard");
  buffers_.clear();
  for (int s = 0; s < n_shards; ++s) buffers_.emplace_back(capacity_);
}

ShardTraceBuffer* TraceCollector::shard(int s) {
  OAQ_REQUIRE(s >= 0 && s < shards(), "trace shard out of range");
  return &buffers_[static_cast<std::size_t>(s)];
}

const ShardTraceBuffer& TraceCollector::shard_buffer(int s) const {
  OAQ_REQUIRE(s >= 0 && s < shards(), "trace shard out of range");
  return buffers_[static_cast<std::size_t>(s)];
}

std::uint64_t TraceCollector::total_recorded() const {
  std::uint64_t total = 0;
  for (const auto& b : buffers_) total += b.recorded();
  return total;
}

std::uint64_t TraceCollector::total_dropped() const {
  std::uint64_t total = 0;
  for (const auto& b : buffers_) total += b.dropped();
  return total;
}

void TraceCollector::write_jsonl(std::ostream& os) const {
  for (int s = 0; s < shards(); ++s) {
    for (const TraceEvent& ev : buffers_[static_cast<std::size_t>(s)]
                                    .events()) {
      os << "{\"shard\":" << s << ",\"ep\":" << ev.episode << ",\"t\":";
      write_json_double(os, ev.t_min);
      os << ",\"type\":\"" << to_string(ev.type)
         << "\",\"sat\":" << ev.sat << ",\"peer\":" << ev.peer
         << ",\"a\":" << ev.a << ",\"v\":";
      write_json_double(os, ev.v);
      os << "}\n";
    }
  }
}

namespace {

/// Value text of `"key":` in a flat one-object JSON line, or nullopt.
std::optional<std::string_view> json_field(std::string_view line,
                                           std::string_view key) {
  const std::string pattern = "\"" + std::string(key) + "\":";
  const auto pos = line.find(pattern);
  if (pos == std::string_view::npos) return std::nullopt;
  auto value = line.substr(pos + pattern.size());
  const auto end = value.find_first_of(",}");
  if (end == std::string_view::npos) return std::nullopt;
  return value.substr(0, end);
}

template <typename T>
std::optional<T> parse_number(std::string_view text) {
  T out{};
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    return std::nullopt;
  }
  return out;
}

}  // namespace

std::optional<ParsedTraceEvent> parse_trace_line(std::string_view line) {
  const auto shard = json_field(line, "shard");
  const auto ep = json_field(line, "ep");
  const auto t = json_field(line, "t");
  const auto type = json_field(line, "type");
  const auto sat = json_field(line, "sat");
  const auto peer = json_field(line, "peer");
  const auto a = json_field(line, "a");
  const auto v = json_field(line, "v");
  if (!shard || !ep || !t || !type || !sat || !peer || !a || !v) {
    return std::nullopt;
  }
  auto type_text = *type;
  if (type_text.size() < 2 || type_text.front() != '"' ||
      type_text.back() != '"') {
    return std::nullopt;
  }
  const auto event_type =
      trace_event_type_from(type_text.substr(1, type_text.size() - 2));
  const auto shard_n = parse_number<int>(*shard);
  const auto ep_n = parse_number<std::int64_t>(*ep);
  const auto t_n = parse_number<double>(*t);
  const auto sat_n = parse_number<int>(*sat);
  const auto peer_n = parse_number<int>(*peer);
  const auto a_n = parse_number<std::int32_t>(*a);
  const auto v_n = parse_number<double>(*v);
  if (!event_type || !shard_n || !ep_n || !t_n || !sat_n || !peer_n || !a_n ||
      !v_n) {
    return std::nullopt;
  }
  ParsedTraceEvent out;
  out.shard = *shard_n;
  out.event.episode = *ep_n;
  out.event.t_min = *t_n;
  out.event.type = *event_type;
  out.event.sat = static_cast<std::int16_t>(*sat_n);
  out.event.peer = static_cast<std::int16_t>(*peer_n);
  out.event.a = *a_n;
  out.event.v = *v_n;
  return out;
}

void TraceSummary::add(const ParsedTraceEvent& parsed) {
  ++events;
  const TraceEvent& ev = parsed.event;
  if (ev.type == TraceEventType::kDetection) ++detections;
  if (ev.type == TraceEventType::kAlertDelivered) ++alerts_delivered;
  if (ev.type == TraceEventType::kXlinkDrop) {
    ++drops;
    const auto reason = static_cast<DropReason>(ev.a);
    ++drops_by_reason[std::string(to_string(reason))];
    ++episode_drops_[{parsed.shard, ev.episode}];
  }
  if (ev.type == TraceEventType::kXlinkRetry) ++retries;
  if (is_fault(ev.type) && ev.a > 0) ++faults_injected;
  if (is_termination(ev.type)) {
    ++terminations;
    const int chain = std::max(0, static_cast<int>(ev.a));
    ++termination[std::string(to_string(ev.type))][chain];
    max_chain = std::max(max_chain, chain);
    episode_cause_.try_emplace({parsed.shard, ev.episode},
                               std::string(to_string(ev.type)));
  }
}

void TraceSummary::finalize() {
  for (const auto& [key, count] : episode_drops_) {
    const auto cause = episode_cause_.find(key);
    if (cause != episode_cause_.end()) {
      drops_by_cause[cause->second] += count;
    } else {
      drops_unattributed += count;
    }
  }
  episode_drops_.clear();
}

TraceSummary summarize_trace(std::istream& is) {
  TraceSummary summary;
  std::string line;
  while (std::getline(is, line)) {
    if (const auto parsed = parse_trace_line(line)) summary.add(*parsed);
  }
  summary.finalize();
  return summary;
}

}  // namespace oaq
