// Minimal JSON value formatting and parsing shared by the obs exporters.
//
// Doubles are rendered with std::to_chars shortest round-trip form: the
// bytes are a pure function of the bit pattern, so any value that is
// bit-deterministic across `jobs` serializes to identical text — the
// property the trace/metrics determinism suite diffs on. Non-finite
// doubles have no JSON literal and are rendered as `null` (the convention
// Chrome's trace viewer and most strict parsers accept).
//
// MiniJson is the inverse direction: a small recursive-descent parser for
// the documents this repo emits (metrics/manifest/span/BENCH files), used
// by `oaqctl report`, `tools/bench_trend`, and the round-trip tests. It
// preserves object key order, which the exporters keep deterministic.
#pragma once

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdint>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace oaq {

/// Writes a double as its shortest round-trip decimal form; non-finite
/// values (NaN, ±inf) become `null`.
inline void write_json_double(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  os << std::string_view(buf, static_cast<std::size_t>(end - buf));
}

/// Writes a quoted JSON string, escaping quotes, backslashes, and control
/// characters (named escapes where JSON has them, \u00XX otherwise).
inline void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\b': os << "\\b"; break;
      case '\f': os << "\\f"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          os << "\\u00" << kHex[(c >> 4) & 0xf] << kHex[c & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

/// Parsed JSON value. Objects keep their key order (the exporters write
/// deterministically ordered keys; round-trips must not reshuffle them).
class MiniJson {
 public:
  enum class Kind : std::uint8_t {
    kNull, kBool, kNumber, kString, kArray, kObject,
  };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<MiniJson> array;
  std::vector<std::pair<std::string, MiniJson>> object;

  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  [[nodiscard]] bool is_number() const { return kind == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind == Kind::kString; }

  /// Object member lookup; null when absent or not an object.
  [[nodiscard]] const MiniJson* find(std::string_view key) const {
    if (kind != Kind::kObject) return nullptr;
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  /// Parses one JSON document (trailing whitespace allowed, trailing
  /// garbage rejected). Returns nullopt on any syntax error.
  [[nodiscard]] static std::optional<MiniJson> parse(std::string_view in) {
    std::size_t pos = 0;
    auto value = parse_value(in, pos);
    if (!value) return std::nullopt;
    skip_ws(in, pos);
    if (pos != in.size()) return std::nullopt;
    return value;
  }

 private:
  static void skip_ws(std::string_view in, std::size_t& pos) {
    while (pos < in.size() &&
           (in[pos] == ' ' || in[pos] == '\t' || in[pos] == '\n' ||
            in[pos] == '\r')) {
      ++pos;
    }
  }

  static bool consume(std::string_view in, std::size_t& pos,
                      std::string_view word) {
    if (in.substr(pos, word.size()) != word) return false;
    pos += word.size();
    return true;
  }

  static std::optional<std::string> parse_string(std::string_view in,
                                                 std::size_t& pos) {
    if (pos >= in.size() || in[pos] != '"') return std::nullopt;
    ++pos;
    std::string out;
    while (pos < in.size()) {
      const char c = in[pos];
      if (c == '"') {
        ++pos;
        return out;
      }
      if (c == '\\') {
        if (pos + 1 >= in.size()) return std::nullopt;
        const char esc = in[pos + 1];
        pos += 2;
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos + 4 > in.size()) return std::nullopt;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = in[pos + static_cast<std::size_t>(i)];
              code <<= 4;
              if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code += 10u + static_cast<unsigned>(h - 'a');
              else if (h >= 'A' && h <= 'F') code += 10u + static_cast<unsigned>(h - 'A');
              else return std::nullopt;
            }
            pos += 4;
            // The exporters only emit \u00XX control escapes; decode the
            // BMP point as UTF-8 so round-trips are lossless.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xc0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3f));
            } else {
              out += static_cast<char>(0xe0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
              out += static_cast<char>(0x80 | (code & 0x3f));
            }
            break;
          }
          default: return std::nullopt;
        }
        continue;
      }
      out += c;
      ++pos;
    }
    return std::nullopt;  // unterminated
  }

  static std::optional<MiniJson> parse_value(std::string_view in,
                                             std::size_t& pos) {
    skip_ws(in, pos);
    if (pos >= in.size()) return std::nullopt;
    MiniJson v;
    const char c = in[pos];
    if (c == 'n') {
      if (!consume(in, pos, "null")) return std::nullopt;
      v.kind = Kind::kNull;
      return v;
    }
    if (c == 't' || c == 'f') {
      v.kind = Kind::kBool;
      v.boolean = c == 't';
      if (!consume(in, pos, v.boolean ? "true" : "false")) return std::nullopt;
      return v;
    }
    if (c == '"') {
      auto s = parse_string(in, pos);
      if (!s) return std::nullopt;
      v.kind = Kind::kString;
      v.text = std::move(*s);
      return v;
    }
    if (c == '[') {
      ++pos;
      v.kind = Kind::kArray;
      skip_ws(in, pos);
      if (pos < in.size() && in[pos] == ']') {
        ++pos;
        return v;
      }
      while (true) {
        auto item = parse_value(in, pos);
        if (!item) return std::nullopt;
        v.array.push_back(std::move(*item));
        skip_ws(in, pos);
        if (pos >= in.size()) return std::nullopt;
        if (in[pos] == ',') {
          ++pos;
          continue;
        }
        if (in[pos] == ']') {
          ++pos;
          return v;
        }
        return std::nullopt;
      }
    }
    if (c == '{') {
      ++pos;
      v.kind = Kind::kObject;
      skip_ws(in, pos);
      if (pos < in.size() && in[pos] == '}') {
        ++pos;
        return v;
      }
      while (true) {
        skip_ws(in, pos);
        auto key = parse_string(in, pos);
        if (!key) return std::nullopt;
        skip_ws(in, pos);
        if (pos >= in.size() || in[pos] != ':') return std::nullopt;
        ++pos;
        auto item = parse_value(in, pos);
        if (!item) return std::nullopt;
        v.object.emplace_back(std::move(*key), std::move(*item));
        skip_ws(in, pos);
        if (pos >= in.size()) return std::nullopt;
        if (in[pos] == ',') {
          ++pos;
          continue;
        }
        if (in[pos] == '}') {
          ++pos;
          return v;
        }
        return std::nullopt;
      }
    }
    // Number (JSON syntax is a subset of what from_chars accepts; the
    // leading characters bound the token).
    const std::size_t start = pos;
    if (in[pos] == '-') ++pos;
    while (pos < in.size() &&
           (std::isdigit(static_cast<unsigned char>(in[pos])) != 0 ||
            in[pos] == '.' || in[pos] == 'e' || in[pos] == 'E' ||
            in[pos] == '+' || in[pos] == '-')) {
      ++pos;
    }
    if (pos == start) return std::nullopt;
    double num = 0.0;
    const auto [end, ec] =
        std::from_chars(in.data() + start, in.data() + pos, num);
    if (ec != std::errc{} || end != in.data() + pos) return std::nullopt;
    v.kind = Kind::kNumber;
    v.number = num;
    return v;
  }
};

}  // namespace oaq
