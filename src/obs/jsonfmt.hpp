// Minimal JSON value formatting shared by the obs exporters.
//
// Doubles are rendered with std::to_chars shortest round-trip form: the
// bytes are a pure function of the bit pattern, so any value that is
// bit-deterministic across `jobs` serializes to identical text — the
// property the trace/metrics determinism suite diffs on.
#pragma once

#include <charconv>
#include <ostream>
#include <string_view>

namespace oaq {

/// Writes a finite double as its shortest round-trip decimal form.
inline void write_json_double(std::ostream& os, double v) {
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  os << std::string_view(buf, static_cast<std::size_t>(end - buf));
}

}  // namespace oaq
