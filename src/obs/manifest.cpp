#include "obs/manifest.hpp"

#include <ostream>

#include "obs/jsonfmt.hpp"

namespace oaq {

std::uint64_t RunManifest::config_digest() const {
  // FNV-1a 64-bit; the canonical input is the exact bytes a reader would
  // reconstruct from the exported config object.
  std::uint64_t h = 0xcbf29ce484222325ull;
  const auto mix = [&h](std::string_view s) {
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 0x100000001b3ull;
    }
  };
  for (const auto& [key, value] : config) {
    mix(key);
    mix("=");
    mix(value);
    mix("\n");
  }
  return h;
}

void RunManifest::write_json(std::ostream& os) const {
  os << "{\"schema\":\"" << kSchema << "\",\"tool\":";
  write_json_string(os, tool);
  os << ",\"seed\":" << seed << ",\"jobs\":" << jobs;
  os << ",\"config_digest\":\"";
  {
    constexpr char kHex[] = "0123456789abcdef";
    const std::uint64_t d = config_digest();
    for (int shift = 60; shift >= 0; shift -= 4) {
      os << kHex[(d >> shift) & 0xf];
    }
  }
  os << "\",\"git_describe\":";
  write_json_string(os, git_describe);
  os << ",\"build_type\":";
  write_json_string(os, build_type);
  os << ",\"compiler\":";
  write_json_string(os, compiler);
  os << ",\"config\":{";
  bool first = true;
  for (const auto& [key, value] : config) {
    if (!first) os << ',';
    first = false;
    write_json_string(os, key);
    os << ':';
    write_json_string(os, value);
  }
  os << "},\"artifacts\":{";
  first = true;
  for (const auto& [kind, path] : artifacts) {
    if (!first) os << ',';
    first = false;
    write_json_string(os, kind);
    os << ':';
    write_json_string(os, path);
  }
  os << "}}\n";
}

}  // namespace oaq
