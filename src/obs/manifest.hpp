// Run-manifest export (ISSUE 7 satellite).
//
// A trace or metrics file alone does not say how it was produced; the
// manifest records the reproduction recipe — seed, jobs, a digest of the
// full configuration, schema version, and build provenance — as a
// SEPARATE JSON file next to the golden-pinned artifacts, so the pinned
// bytes stay untouched while every export becomes self-describing.
//
// The config digest is FNV-1a over the canonical "key=value\n" lines in
// insertion order: two runs with the same digest ran the same
// configuration (modulo hash collision), which `oaqctl report` and CI
// artifact triage key on.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace oaq {

/// Reproduction recipe of one CLI run.
struct RunManifest {
  static constexpr std::string_view kSchema = "oaq-manifest-v1";

  std::string tool;          ///< subcommand ("simulate", "campaign", ...)
  std::uint64_t seed = 0;
  int jobs = 0;              ///< requested (0 = auto)
  std::string git_describe;  ///< build-time `git describe` (may be empty)
  std::string build_type;    ///< CMAKE_BUILD_TYPE at compile time
  std::string compiler;      ///< __VERSION__ of the building compiler
  /// Canonical configuration lines, in insertion order (the digest input).
  std::vector<std::pair<std::string, std::string>> config;
  /// Artifact kind → path ("trace" → trace.jsonl, ...).
  std::vector<std::pair<std::string, std::string>> artifacts;

  void add_config(std::string key, std::string value) {
    config.emplace_back(std::move(key), std::move(value));
  }
  void add_artifact(std::string kind, std::string path) {
    artifacts.emplace_back(std::move(kind), std::move(path));
  }

  /// FNV-1a 64-bit over "key=value\n" config lines in order.
  [[nodiscard]] std::uint64_t config_digest() const;

  /// One JSON object (schema, identity, digest as hex, config, artifacts).
  void write_json(std::ostream& os) const;
};

}  // namespace oaq
