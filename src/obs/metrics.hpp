// Mergeable metrics registry for the Monte-Carlo harnesses.
//
// A MetricsRegistry is a named bag of counters (int64), gauges (double,
// last-write-wins) and value stats (RunningStat — used both for scoped
// wall-clock timers and for simulation-derived distributions such as chain
// length). Registries follow the same discipline as the PR-1 accumulators:
// each parallel shard owns a private registry, and shard registries are
// folded left-to-right in shard order with `merge`, so every metric that is
// derived from simulation quantities is BIT-identical for any `jobs` value.
//
// Two metric classes, by determinism:
//   * simulation-derived (counters, gauges, stats fed from sim state):
//     deterministic — covered by the trace-determinism suite;
//   * wall-clock (anything recorded through `ScopedTimer`): inherently
//     non-deterministic; keep these under a `wall.` name prefix so
//     consumers know not to regression-compare them.
//
// A disabled registry is a null pointer at the recording site — callers
// branch on `metrics != nullptr`; there is no registry-side off switch to
// keep the hot-path cost a single predictable branch.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>

#include "common/stats.hpp"

namespace oaq {

/// Named counters / gauges / value stats with shard-order merge.
class MetricsRegistry {
 public:
  /// Increment a counter (creating it at zero). Overflow-guarded.
  void add(std::string_view counter, std::int64_t delta = 1);

  /// Set a gauge to `value` (creating it).
  void set_gauge(std::string_view gauge, double value);

  /// Fold `value` into a named RunningStat (creating it).
  void observe(std::string_view stat, double value);

  /// Scoped wall-clock timer: observes elapsed seconds into `stat` on
  /// destruction. Use `wall.`-prefixed names (see file header).
  class ScopedTimer {
   public:
    ScopedTimer(MetricsRegistry& registry, std::string stat)
        : registry_(&registry), stat_(std::move(stat)),
          start_(std::chrono::steady_clock::now()) {}
    ~ScopedTimer() {
      const auto elapsed = std::chrono::steady_clock::now() - start_;
      registry_->observe(stat_,
                         std::chrono::duration<double>(elapsed).count());
    }
    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

   private:
    MetricsRegistry* registry_;
    std::string stat_;
    std::chrono::steady_clock::time_point start_;
  };

  [[nodiscard]] ScopedTimer time(std::string stat) {
    return ScopedTimer(*this, std::move(stat));
  }

  /// Counter value; 0 when never incremented.
  [[nodiscard]] std::int64_t counter(std::string_view name) const;
  /// Gauge value; 0.0 when never set.
  [[nodiscard]] double gauge(std::string_view name) const;
  /// Stat by name; an empty RunningStat when never observed.
  [[nodiscard]] const RunningStat& stat(std::string_view name) const;

  [[nodiscard]] const std::map<std::string, std::int64_t, std::less<>>&
  counters() const { return counters_; }
  [[nodiscard]] const std::map<std::string, double, std::less<>>& gauges()
      const { return gauges_; }
  [[nodiscard]] const std::map<std::string, RunningStat, std::less<>>& stats()
      const { return stats_; }

  [[nodiscard]] bool empty() const {
    return counters_.empty() && gauges_.empty() && stats_.empty();
  }

  /// Folds `other` in: counters add (overflow-guarded), gauges take the
  /// right-hand value (shard-order last-write-wins), stats merge via
  /// RunningStat::merge. Merging left-to-right in shard order reproduces
  /// the serial recording order, which is what makes registries safe to
  /// shard exactly like the Monte-Carlo accumulators.
  void merge(const MetricsRegistry& other);

  /// One-object JSON export with sorted keys (deterministic bytes):
  /// {"counters":{...},"gauges":{...},"stats":{"name":{"count":..,...}}}
  void write_json(std::ostream& os) const;

 private:
  std::map<std::string, std::int64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, RunningStat, std::less<>> stats_;
};

}  // namespace oaq
