#include "obs/ledger.hpp"

#include <ostream>

namespace oaq {

void EpisodeLedger::reserve(std::size_t episodes) {
  if (episodes > rows_.size()) rows_.resize(episodes);
}

LedgerRow& EpisodeLedger::row_for(std::int64_t episode) {
  if (episode < 0) return global_;
  const auto index = static_cast<std::size_t>(episode);
  if (index >= rows_.size()) rows_.resize(index + 1);
  return rows_[index];
}

void EpisodeLedger::record_drop(std::int64_t episode, DropReason reason) {
  LedgerRow& r = row_for(episode);
  switch (reason) {
    case DropReason::kLoss: ++r.drops_loss; break;
    case DropReason::kDeadSender:
    case DropReason::kDeadReceiver:
    case DropReason::kUnregistered: ++r.drops_dead; break;
    case DropReason::kLinkDown: ++r.drops_link; break;
  }
}

void EpisodeLedger::record_retry(std::int64_t episode) {
  ++row_for(episode).retries;
}

void EpisodeLedger::record_retry_exhausted(std::int64_t episode) {
  ++row_for(episode).retries_exhausted;
}

void EpisodeLedger::record_fault(std::int64_t episode) {
  ++row_for(episode).faults;
}

void EpisodeLedger::record_reroute(std::int64_t episode) {
  ++row_for(episode).reroutes;
}

void EpisodeLedger::record_probation(std::int64_t episode) {
  ++row_for(episode).probations;
}

const LedgerRow& EpisodeLedger::row(std::int64_t episode) const {
  if (episode < 0 || static_cast<std::size_t>(episode) >= rows_.size()) {
    return global_;
  }
  return rows_[static_cast<std::size_t>(episode)];
}

LedgerRow EpisodeLedger::totals() const {
  LedgerRow total = global_;
  for (const LedgerRow& r : rows_) total.merge(r);
  return total;
}

void EpisodeLedger::merge(const EpisodeLedger& other) {
  reserve(other.rows_.size());
  for (std::size_t i = 0; i < other.rows_.size(); ++i) {
    rows_[i].merge(other.rows_[i]);
  }
  global_.merge(other.global_);
}

void EpisodeLedger::clear() {
  rows_.clear();
  global_ = {};
}

namespace {

void write_row_fields(std::ostream& os, const LedgerRow& r) {
  os << "\"drops_loss\":" << r.drops_loss
     << ",\"drops_dead\":" << r.drops_dead
     << ",\"drops_link\":" << r.drops_link << ",\"retries\":" << r.retries
     << ",\"retries_exhausted\":" << r.retries_exhausted
     << ",\"faults\":" << r.faults << ",\"reroutes\":" << r.reroutes
     << ",\"probations\":" << r.probations;
}

}  // namespace

void EpisodeLedger::write_json(std::ostream& os) const {
  os << "{\"schema\":\"oaq-ledger-v1\",\"episodes\":" << rows_.size()
     << ",\"rows\":[";
  bool first = true;
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (!rows_[i].any()) continue;
    if (!first) os << ',';
    first = false;
    os << "{\"ep\":" << i << ',';
    write_row_fields(os, rows_[i]);
    os << '}';
  }
  os << "],\"global\":{";
  write_row_fields(os, global_);
  os << "},\"totals\":{";
  write_row_fields(os, totals());
  os << "}}\n";
}

}  // namespace oaq
