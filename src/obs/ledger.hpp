// Per-episode fault-attribution ledger (ISSUE 7 tentpole).
//
// Campaign episodes share ONE CrosslinkNetwork, so the run-wide
// NetworkStats cannot say *which* episode a drop, retry, or fault hit —
// which forced invariant I7 into a conservative run-wide audit (any drop
// anywhere excused every unresolved participant) and left trace-summary's
// drops column unattributed for multi-target runs. The ledger closes that
// gap: every envelope carries the id of the episode that sent it, and the
// network's drop/retry sites — plus the FaultInjector's activations —
// record into a dense per-episode row. Events that genuinely belong to no
// episode (membership gossip, campaign-wide fault clauses) land in the
// global row (id -1).
//
// Cost contract: rows are a dense vector indexed by episode/target id;
// `reserve` pre-sizes it (campaigns know the arrival count before the DES
// drains), so the recording hot path is bounds-check + increment — zero
// steady-state allocations (bench/span_overhead gate). A detached ledger
// is a null pointer at every recording site: one predictable branch.
//
// Determinism: rows are keyed by episode/target id — a pure function of
// the simulation — and merge() folds replication ledgers row-wise, so the
// merged ledger is bit-identical for any worker count.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "obs/trace.hpp"

namespace oaq {

/// One episode's attributed infrastructure counters.
struct LedgerRow {
  std::int64_t drops_loss = 0;   ///< random loss (final, post-retry)
  std::int64_t drops_dead = 0;   ///< dead sender/receiver/unregistered
  std::int64_t drops_link = 0;   ///< link outage / partition windows
  std::int64_t retries = 0;      ///< reliable-mode retransmissions
  std::int64_t retries_exhausted = 0;  ///< final drops after >= 1 retry
  std::int64_t faults = 0;       ///< fault-clause activations
  std::int64_t reroutes = 0;     ///< health-aware chain re-routes (ISSUE 10)
  std::int64_t probations = 0;   ///< link demotions/probation escalations

  [[nodiscard]] std::int64_t drops() const {
    return drops_loss + drops_dead + drops_link;
  }
  [[nodiscard]] bool any() const {
    return drops_loss != 0 || drops_dead != 0 || drops_link != 0 ||
           retries != 0 || retries_exhausted != 0 || faults != 0 ||
           reroutes != 0 || probations != 0;
  }

  void merge(const LedgerRow& other) {
    drops_loss += other.drops_loss;
    drops_dead += other.drops_dead;
    drops_link += other.drops_link;
    retries += other.retries;
    retries_exhausted += other.retries_exhausted;
    faults += other.faults;
    reroutes += other.reroutes;
    probations += other.probations;
  }

  friend bool operator==(const LedgerRow&, const LedgerRow&) = default;
};

/// Dense episode-id → LedgerRow map plus a global row for id -1.
class EpisodeLedger {
 public:
  /// Pre-size the row table so recording never allocates (call once the
  /// episode/target count is known, before the simulator drains).
  void reserve(std::size_t episodes);

  void record_drop(std::int64_t episode, DropReason reason);
  void record_retry(std::int64_t episode);
  void record_retry_exhausted(std::int64_t episode);
  void record_fault(std::int64_t episode);
  void record_reroute(std::int64_t episode);
  void record_probation(std::int64_t episode);

  /// Row of `episode`; ids outside [0, size) — including -1 — read the
  /// global row. Never inserts.
  [[nodiscard]] const LedgerRow& row(std::int64_t episode) const;
  [[nodiscard]] const LedgerRow& global_row() const { return global_; }
  /// Highest recorded episode id + 1 (dense table size).
  [[nodiscard]] std::size_t size() const { return rows_.size(); }

  /// Column sums over every row including the global one — must reconcile
  /// with the shared network's NetworkStats (the exactness tests diff them).
  [[nodiscard]] LedgerRow totals() const;

  /// Row-wise fold (replication merge): row e of `other` adds into row e
  /// here, global into global. Row identity is the episode/target id, so
  /// the merged ledger is independent of the worker count.
  void merge(const EpisodeLedger& other);

  void clear();

  /// {"schema":"oaq-ledger-v1","episodes":N,"rows":[{"ep":E,...},...],
  ///  "global":{...},"totals":{...}} — rows with all-zero counters are
  /// skipped (dense table, sparse activity).
  void write_json(std::ostream& os) const;

 private:
  [[nodiscard]] LedgerRow& row_for(std::int64_t episode);

  std::vector<LedgerRow> rows_;
  LedgerRow global_;
};

}  // namespace oaq
