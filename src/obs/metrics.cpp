#include "obs/metrics.hpp"

#include <ostream>

#include "common/error.hpp"
#include "obs/jsonfmt.hpp"

namespace oaq {

void MetricsRegistry::add(std::string_view counter, std::int64_t delta) {
  auto it = counters_.find(counter);
  if (it == counters_.end()) {
    counters_.emplace(std::string(counter), delta);
    return;
  }
  std::int64_t out = 0;
  OAQ_REQUIRE(!__builtin_add_overflow(it->second, delta, &out),
              "metrics counter overflow");
  it->second = out;
}

void MetricsRegistry::set_gauge(std::string_view gauge, double value) {
  auto it = gauges_.find(gauge);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(gauge), value);
  } else {
    it->second = value;
  }
}

void MetricsRegistry::observe(std::string_view stat, double value) {
  auto it = stats_.find(stat);
  if (it == stats_.end()) {
    it = stats_.emplace(std::string(stat), RunningStat{}).first;
  }
  it->second.add(value);
}

std::int64_t MetricsRegistry::counter(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge(std::string_view name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

const RunningStat& MetricsRegistry::stat(std::string_view name) const {
  static const RunningStat kEmpty;
  const auto it = stats_.find(name);
  return it == stats_.end() ? kEmpty : it->second;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, value] : other.counters_) add(name, value);
  for (const auto& [name, value] : other.gauges_) set_gauge(name, value);
  for (const auto& [name, stat] : other.stats_) {
    auto it = stats_.find(name);
    if (it == stats_.end()) {
      stats_.emplace(name, stat);
    } else {
      it->second.merge(stat);
    }
  }
}

void MetricsRegistry::write_json(std::ostream& os) const {
  // Names are escaped (quotes, backslashes, control chars); the repo's own
  // metric names are plain identifiers, so the golden bytes are unchanged.
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    os << (first ? "" : ",");
    write_json_string(os, name);
    os << ':' << value;
    first = false;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges_) {
    os << (first ? "" : ",");
    write_json_string(os, name);
    os << ':';
    write_json_double(os, value);
    first = false;
  }
  os << "},\"stats\":{";
  first = true;
  for (const auto& [name, stat] : stats_) {
    os << (first ? "" : ",");
    write_json_string(os, name);
    os << ":{\"count\":" << stat.count() << ",\"mean\":";
    write_json_double(os, stat.mean());
    os << ",\"min\":";
    write_json_double(os, stat.count() ? stat.min() : 0.0);
    os << ",\"max\":";
    write_json_double(os, stat.count() ? stat.max() : 0.0);
    os << ",\"stddev\":";
    write_json_double(os, stat.stddev());
    os << '}';
    first = false;
  }
  os << "}}";
}

}  // namespace oaq
