// Structured per-episode protocol event tracing.
//
// The OAQ protocol's QoS pmf is explained by *why* chains terminate —
// TC-1 accuracy, TC-2 deadline margin, TC-3 signal loss, wait-deadline
// rescue under fail-silence (paper §3.2, Fig. 4). The tracer records those
// protocol events (detection, chain hop S_n→S_{n+1}, crosslink
// send/recv/drop, overlap withhold, termination, done-notification,
// wait-deadline firing) into per-shard ring buffers and exports them as
// JSONL.
//
// Determinism contract (mirrors the parallel accumulators): the shard
// decomposition is fixed by (episodes, n_shards), episodes within a shard
// run sequentially, and every event is derived from simulation state — so
// each shard's buffer content is independent of the worker count, and the
// canonical export (shard buffers concatenated in shard order) is
// BIT-identical for any `jobs` value. Ring overflow drops the *oldest*
// events per shard; since per-shard event streams are jobs-independent, so
// is what gets dropped.
//
// Cost contract: a disabled tracer is a null `ShardTraceBuffer*` at every
// recording site — one predictable branch, no virtual call, no allocation
// (verified by the micro_kernels disabled-tracer case).
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace oaq {

/// Protocol event kinds. `term_*` events mark a chain member terminating
/// its part of the coordination, tagged with the cause; an episode can
/// emit several (e.g. a TC-3 silent peer plus the predecessor's
/// wait-deadline rescue).
enum class TraceEventType : std::uint8_t {
  kDetection = 0,      ///< t0: first satellite sees the signal
  kChainHop,           ///< coordination request S_n → S_{n+1}
  kXlinkSend,          ///< crosslink/downlink message queued
  kXlinkRecv,          ///< message delivered (v = delay seconds)
  kXlinkDrop,          ///< message dropped (a = DropReason)
  kWithhold,           ///< OAQ withholds for an overlap window (v = wait min)
  kDone,               ///< "coordination done" received downstream
  kWaitDeadline,       ///< a member's wait deadline τ−(n−1)δ fired
  kAlert,              ///< alert sent toward the ground (v = err km)
  kAlertDelivered,     ///< first alert reached the ground (a = QoS level)
  kTermTc1,            ///< TC-1: estimated error under threshold
  kTermTc2,            ///< TC-2: deadline margin exhausted
  kTermTc3,            ///< TC-3: signal gone / member cannot compute
  kTermWaitDeadline,   ///< terminated by the wait-deadline rescue
  kTermGeometry,       ///< no further pass arrives — chain exhausted
  kTermWindow,         ///< next pass outside the opportunity window
  kTermSimultaneous,   ///< simultaneous fix computed — nothing to chain
  kTermPreliminary,    ///< preliminary fallback forced at the deadline
  kTermBaq,            ///< BAQ: delivered after the initial computation
  kTermLate,           ///< iteration completed after the deadline passed
  // Degradation events (PR 5). Appended after the term_* family, so
  // is_termination must stay a bounded range.
  kXlinkRetry,         ///< reliable-mode retransmission (a = DropReason,
                       ///< v = ack-timeout seconds until the retry)
  kFaultFailSilent,    ///< injector: node went fail-silent
  kFaultRecover,       ///< injector: node recovered
  kFaultLinkOutage,    ///< sat = plane_a, peer = plane_b, a = +1/-1
  kFaultDelaySpike,    ///< v = factor, a = +1/-1 (window start/end)
  kFaultBurstLoss,     ///< v = loss probability, a = +1/-1
  kFaultPartition,     ///< v = plane bitmask (exact below 2^53), a = +1/-1
  // Stochastic fault processes + self-healing links (ISSUE 10).
  kFaultLinkLoss,      ///< sat = plane_a, peer = plane_b, v = loss, a = +1/-1
  kLinkDemoted,        ///< health: sat/peer = planes, a = level, v = probation s
  kLinkProbe,          ///< health: probe attempt over a demoted link
  kLinkRestored,       ///< health: demoted link back above restore threshold
};

/// Reason codes carried in `TraceEvent::a` for kXlinkDrop / kXlinkRetry.
enum class DropReason : std::uint8_t {
  kDeadSender = 0,
  kLoss = 1,
  kDeadReceiver = 2,
  kUnregistered = 3,
  kLinkDown = 4,  ///< link outage or plane partition window
};

/// Stable wire name of an event type (the JSONL "type" value).
[[nodiscard]] std::string_view to_string(TraceEventType type);

/// Stable name of a drop reason (trace-summary drop tables).
[[nodiscard]] std::string_view to_string(DropReason reason);

/// Inverse of to_string; nullopt for unknown names.
[[nodiscard]] std::optional<TraceEventType> trace_event_type_from(
    std::string_view name);

/// True for the `term_*` family (the trace-summary rows).
[[nodiscard]] constexpr bool is_termination(TraceEventType type) {
  return type >= TraceEventType::kTermTc1 &&
         type <= TraceEventType::kTermLate;
}

/// True for the injector's `fault_*` family.
[[nodiscard]] constexpr bool is_fault(TraceEventType type) {
  return type >= TraceEventType::kFaultFailSilent &&
         type <= TraceEventType::kFaultLinkLoss;
}

/// One protocol event. Flat and POD-sized so ring buffers stay cheap.
/// `sat`/`peer` are satellite slots (-1 = ground, -2 = none); `a` is a
/// small integer detail (chain length for term_*, ordinal for chain hops,
/// QoS level for deliveries, DropReason for drops); `v` is a double detail
/// (error km, delay s, wait min) — see each type's comment.
struct TraceEvent {
  std::int64_t episode = 0;  ///< episode index / campaign target id (-1 n/a)
  double t_min = 0.0;        ///< simulation time, minutes since origin
  TraceEventType type = TraceEventType::kDetection;
  std::int16_t sat = -2;
  std::int16_t peer = -2;
  std::int32_t a = 0;
  double v = 0.0;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// Fixed-capacity ring buffer of one shard's events. Keeps the most
/// recent `capacity` events; `dropped()` counts overwritten ones.
class ShardTraceBuffer {
 public:
  /// Capacity sentinel for staging buffers that must never wrap (the
  /// interleaved batch engine buffers one lane's events here before
  /// resequencing them into the real shard ring in episode order).
  static constexpr std::size_t kUnbounded = static_cast<std::size_t>(-1);

  explicit ShardTraceBuffer(std::size_t capacity);

  void push(const TraceEvent& event);

  /// Replay every retained event into `dst` (in recording order) and clear
  /// this buffer, keeping its grown storage. `dst` ends up byte-identical
  /// to having received the pushes directly — including its ring-overflow
  /// and recorded/dropped accounting. Requires that this buffer dropped
  /// nothing (stage with kUnbounded capacity).
  void drain_into(ShardTraceBuffer& dst);

  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t recorded() const { return recorded_; }
  [[nodiscard]] std::uint64_t dropped() const {
    return recorded_ - events_.size();
  }

  /// Events in recording order (oldest surviving first).
  [[nodiscard]] std::vector<TraceEvent> events() const;

  void clear();

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;  ///< index of the oldest event once wrapped
  std::uint64_t recorded_ = 0;
  std::vector<TraceEvent> events_;
};

/// Owns one ring buffer per shard. The harness calls `prepare(n_shards)`
/// before fanning out; each shard then records into its private buffer
/// with no synchronization (a shard is processed by exactly one worker).
class TraceCollector {
 public:
  explicit TraceCollector(std::size_t capacity_per_shard = 1 << 16);

  /// Drops previous buffers and allocates `n_shards` empty ones.
  void prepare(int n_shards);

  [[nodiscard]] int shards() const { return static_cast<int>(buffers_.size()); }
  [[nodiscard]] ShardTraceBuffer* shard(int s);
  [[nodiscard]] const ShardTraceBuffer& shard_buffer(int s) const;

  [[nodiscard]] std::uint64_t total_recorded() const;
  [[nodiscard]] std::uint64_t total_dropped() const;

  /// Canonical JSONL export: shard buffers concatenated in shard order,
  /// one event per line:
  ///   {"shard":S,"ep":E,"t":T,"type":"...","sat":A,"peer":B,"a":N,"v":V}
  /// Deterministic bytes for any jobs value (see file header).
  void write_jsonl(std::ostream& os) const;

 private:
  std::size_t capacity_;
  std::deque<ShardTraceBuffer> buffers_;  // deque: buffers never relocate
};

/// One JSONL line parsed back into an event (plus its shard).
struct ParsedTraceEvent {
  int shard = 0;
  TraceEvent event;
};

/// Parses a line written by TraceCollector::write_jsonl. Returns nullopt
/// for blank or foreign lines.
[[nodiscard]] std::optional<ParsedTraceEvent> parse_trace_line(
    std::string_view line);

/// Aggregation of a trace: termination-cause × chain-length counts (the
/// `oaqctl trace-summary` table) plus stream totals.
struct TraceSummary {
  /// cause name → chain length → event count.
  std::map<std::string, std::map<int, std::int64_t>> termination;
  std::int64_t events = 0;        ///< parsed events
  std::int64_t terminations = 0;  ///< events in the term_* family
  std::int64_t detections = 0;
  std::int64_t alerts_delivered = 0;
  int max_chain = 0;
  // Degradation accounting (PR 5): crosslink drops split by reason,
  // reliable-mode retries, injected fault activations, and — after
  // finalize() — drops attributed to each episode's termination cause.
  std::int64_t drops = 0;
  std::map<std::string, std::int64_t> drops_by_reason;
  std::int64_t retries = 0;
  std::int64_t faults_injected = 0;  ///< fault_* activations (a > 0)
  std::map<std::string, std::int64_t> drops_by_cause;
  std::int64_t drops_unattributed = 0;

  void add(const ParsedTraceEvent& parsed);
  /// Attribute each episode's drop events to its first recorded
  /// termination cause. Drops of episodes with no termination event —
  /// including shared-network campaign events stamped episode -1 — land
  /// in `drops_unattributed`. Idempotent; summarize_trace calls it.
  void finalize();

 private:
  /// (shard, episode) → pending drop count / first termination cause.
  std::map<std::pair<int, std::int64_t>, std::int64_t> episode_drops_;
  std::map<std::pair<int, std::int64_t>, std::string> episode_cause_;
};

/// Summarizes a JSONL stream line by line (unparseable lines are skipped).
[[nodiscard]] TraceSummary summarize_trace(std::istream& is);

}  // namespace oaq
