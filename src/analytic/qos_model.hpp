// Closed-form QoS model: P(Y = y | k) for the OAQ and BAQ schemes.
//
// Derivation (paper §4.2.2 gives Eq. (4) and omits the rest; we reconstruct
// from Theorems 1-2 and the Fig. 6 timing diagrams):
//
// A signal occurs uniformly in one pattern period L1 = Tr[k] (PASTA), lasts
// Exp(µ), and each iterative geolocation computation lasts Exp(ν). τ is the
// alert deadline measured from initial detection (footnote 2). Write
// H(z) = 1 − e^{−νz} for z > 0 (0 otherwise).
//
// OVERLAPPING plane (I[k] = 1): the period splits into a single-coverage
// stretch α (length L1−L2) followed by an overlap window β (length
// L2 = Tc − Tr).
//   * OAQ level 3 (Eq. 4): with L̂ = min(L1−L2, τ),
//       G3 = (1/L1)[ ∫₀^{L̂} e^{−µu}·H(τ−u) du + L2·H(τ) ]
//     (u = waiting time from occurrence in α to the β window; e^{−µu} is
//     the probability the signal is still up when the overlapped footprints
//     arrive — the paper's W_x — and H gates computation completion by τ).
//   * OAQ levels: P3 = G3, P2 = 0, P1 = 1 − G3, P0 = 0 (the centerline is
//     always covered, so the preliminary result is always deliverable).
//   * BAQ level 3: delivered from simultaneous coverage only when the
//     signal OCCURS inside β (no withholding): P3 = (L2/L1)·H(τ);
//     P1 = 1 − P3.
//
// UNDERLAPPING plane (I[k] = 0): the period is an α stretch (length
// L1−L2 = Tc) followed by a coverage gap γ (length L2 = Tr − Tc).
//   * Detection: P_det = (1/L1)[ Tc + ∫₀^{L2} e^{−µd} dd ] (occur while
//     covered, or occur in the gap d before the next footprint and survive).
//   * OAQ level 2, Theorem 2 case 1 (τ > L2): signal occurs in α_i; the
//     next satellite arrives after a wait d uniform on [L2, L1]:
//       G2a = (1/L1) ∫_{L2}^{min(L1, τ)} e^{−µd}·H(τ−d) dd.
//   * OAQ level 2, Theorem 2 case 2 (τ > L1): signal occurs in γ_i at
//     distance d ∈ [0, L2] before α_{i+1}; S_{i+1} detects it at arrival
//     (deadline starts there), S_{i+2} arrives L1 later:
//       G2b = (1/L1)·H(τ−L1) ∫₀^{L2} e^{−µ(d+L1)} dd.
//     (The theorem's occurrence-anchored "within min(L1+L2, τ) of α_{i+2}"
//     is the conservative version of this detection-anchored window.)
//   * OAQ levels: P2 = G2a + G2b, P1 = P_det − P2, P0 = 1 − P_det, P3 = 0.
//   * BAQ: P1 = P_det, P0 = 1 − P_det (no coordination ⇒ no level 2).
//
// Headline check (tested): k=12, τ=5, µ=0.5, ν=30 → OAQ P3 ≈ 0.444,
// BAQ P3 = 0.20 (paper: 0.44 / 0.20).
#pragma once

#include <array>
#include <memory>

#include "analytic/geometry.hpp"
#include "common/distribution.hpp"
#include "common/units.hpp"

namespace oaq {

/// Which QoS-enhancement scheme to evaluate.
enum class Scheme {
  kOaq,  ///< opportunity-adaptive enhancement (the paper's contribution)
  kBaq,  ///< basic fault-adaptive scheme (spares + deployment policies only)
};

/// Model parameters (defaults: the paper's §4.3 baseline).
struct QosModelParams {
  Duration tau = Duration::minutes(5);        ///< alert deadline τ
  Rate mu = Rate::per_minute(0.5);            ///< signal termination rate µ
  Rate nu = Rate::per_minute(30.0);           ///< iterative computation rate ν
};

/// Closed-form conditional QoS distribution P(Y = y | k).
class QosModel {
 public:
  /// The paper's parameterization: exponential signal durations (rate µ)
  /// and computation times (rate ν).
  QosModel(PlaneGeometry geometry, QosModelParams params);

  /// General-distribution variant (sensitivity analysis): arbitrary
  /// signal-duration and computation-time laws. The model derivation only
  /// uses the survival function of the former and the CDF of the latter,
  /// so it carries over unchanged.
  QosModel(PlaneGeometry geometry, Duration tau,
           std::shared_ptr<const DurationDistribution> signal_duration,
           std::shared_ptr<const DurationDistribution> computation_time);

  [[nodiscard]] const PlaneGeometry& geometry() const { return geometry_; }
  /// The exponential-parameterization view; rates are meaningful only for
  /// models built from QosModelParams.
  [[nodiscard]] const QosModelParams& params() const { return params_; }
  [[nodiscard]] Duration tau() const { return params_.tau; }

  /// P(Y = y | k) for y = 0..3 (index = level).
  [[nodiscard]] std::array<double, 4> conditional_pmf(int k,
                                                      Scheme scheme) const;

  /// P(Y = y | k).
  [[nodiscard]] double conditional(int k, int level, Scheme scheme) const;

  /// P(Y >= y | k).
  [[nodiscard]] double conditional_tail(int k, int level, Scheme scheme) const;

  /// Eq. (4): probability of a level-3 (simultaneous dual) result under
  /// OAQ, for an overlapping plane.
  [[nodiscard]] double g3(int k) const;

  /// Probability of a level-2 (sequential dual) result under OAQ, for an
  /// underlapping plane (G2a + G2b above).
  [[nodiscard]] double g2(int k) const;

  /// Probability that the signal is detected at all (underlapping planes;
  /// 1 for overlapping planes).
  [[nodiscard]] double detect_probability(int k) const;

 private:
  /// H(z) = P(computation <= z).
  [[nodiscard]] double completion(double z_min) const;
  /// S(u) = P(signal duration > u).
  [[nodiscard]] double signal_survival(double u_min) const;
  /// ∫_{a}^{b} S(u)·H(τ−u) du, all in minutes.
  [[nodiscard]] double wait_and_complete_integral(double a, double b) const;
  /// ∫_{0}^{b} S(u) du (gap-survival mass), minutes.
  [[nodiscard]] double survival_integral(double b) const;

  PlaneGeometry geometry_;
  QosModelParams params_;
  std::shared_ptr<const DurationDistribution> signal_;
  std::shared_ptr<const DurationDistribution> computation_;
};

}  // namespace oaq
