#include "analytic/qos_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/numeric.hpp"

namespace oaq {

QosModel::QosModel(PlaneGeometry geometry, QosModelParams params)
    : QosModel(geometry, params.tau,
               std::make_shared<ExponentialDuration>(params.mu),
               std::make_shared<ExponentialDuration>(params.nu)) {
  params_ = params;
}

QosModel::QosModel(PlaneGeometry geometry, Duration tau,
                   std::shared_ptr<const DurationDistribution> signal_duration,
                   std::shared_ptr<const DurationDistribution> computation_time)
    : geometry_(geometry), signal_(std::move(signal_duration)),
      computation_(std::move(computation_time)) {
  OAQ_REQUIRE(tau > Duration::zero(), "deadline must be positive");
  OAQ_REQUIRE(signal_ != nullptr, "signal-duration distribution required");
  OAQ_REQUIRE(computation_ != nullptr, "computation distribution required");
  params_.tau = tau;
}

double QosModel::completion(double z_min) const {
  if (z_min <= 0.0) return 0.0;
  return computation_->cdf(Duration::minutes(z_min));
}

double QosModel::signal_survival(double u_min) const {
  return signal_->survival(Duration::minutes(u_min));
}

double QosModel::wait_and_complete_integral(double a, double b) const {
  if (b <= a) return 0.0;
  return integrate(
      [&](double u) {
        return signal_survival(u) * completion(params_.tau.to_minutes() - u);
      },
      a, b, 1e-12);
}

double QosModel::survival_integral(double b) const {
  if (b <= 0.0) return 0.0;
  return integrate([&](double u) { return signal_survival(u); }, 0.0, b,
                   1e-12);
}

double QosModel::g3(int k) const {
  OAQ_REQUIRE(geometry_.overlapping(k), "G3 requires an overlapping plane");
  const double l1 = geometry_.l1(k).to_minutes();
  const double l2 = geometry_.l2(k).to_minutes();
  const double tau = params_.tau.to_minutes();
  const double l_hat = std::min(l1 - l2, tau);
  // Occur in α within L̂ of β and survive the wait, or occur inside β.
  const double from_alpha = wait_and_complete_integral(0.0, l_hat);
  const double from_beta = l2 * completion(tau);
  return (from_alpha + from_beta) / l1;
}

double QosModel::g2(int k) const {
  OAQ_REQUIRE(!geometry_.overlapping(k), "G2 requires an underlapping plane");
  const double l1 = geometry_.l1(k).to_minutes();
  const double l2 = geometry_.l2(k).to_minutes();
  const double tau = params_.tau.to_minutes();

  // Theorem 2, case 1: occur in α, next satellite after wait d in [L2, L1].
  double g2a = 0.0;
  if (tau > l2) {
    g2a = wait_and_complete_integral(l2, std::min(l1, tau)) / l1;
  }
  // Theorem 2, case 2: occur in the gap, detected by S_{i+1}, sequential
  // with S_{i+2} which arrives L1 after detection. The signal must survive
  // the gap wait d plus the full revisit L1: ∫₀^{L2} S(d + L1) dd.
  double g2b = 0.0;
  if (tau > l1 && l2 > 0.0) {
    const double survive_both = integrate(
        [&](double d) { return signal_survival(d + l1); }, 0.0, l2, 1e-12);
    g2b = completion(tau - l1) * survive_both / l1;
  }
  return g2a + g2b;
}

double QosModel::detect_probability(int k) const {
  if (geometry_.overlapping(k)) return 1.0;
  const double l1 = geometry_.l1(k).to_minutes();
  const double l2 = geometry_.l2(k).to_minutes();
  const double covered = l1 - l2;  // = Tc
  return (covered + survival_integral(l2)) / l1;
}

std::array<double, 4> QosModel::conditional_pmf(int k, Scheme scheme) const {
  OAQ_REQUIRE(k >= 0, "capacity must be nonnegative");
  std::array<double, 4> pmf{0.0, 0.0, 0.0, 0.0};
  if (k == 0) {
    pmf[0] = 1.0;  // empty plane: every signal escapes surveillance
    return pmf;
  }
  if (geometry_.overlapping(k)) {
    const double p3 = scheme == Scheme::kOaq
                          ? g3(k)
                          : (geometry_.l2(k) / geometry_.l1(k)) *
                                completion(params_.tau.to_minutes());

    pmf[3] = p3;
    pmf[1] = 1.0 - p3;
    return pmf;
  }
  const double p_det = detect_probability(k);
  if (scheme == Scheme::kOaq) {
    const double p2 = g2(k);
    OAQ_ENSURE(p2 <= p_det + 1e-12, "level-2 probability exceeds detection");
    pmf[2] = p2;
    pmf[1] = p_det - p2;
  } else {
    pmf[1] = p_det;
  }
  pmf[0] = 1.0 - p_det;
  return pmf;
}

double QosModel::conditional(int k, int level, Scheme scheme) const {
  OAQ_REQUIRE(level >= 0 && level <= 3, "QoS level must be in 0..3");
  return conditional_pmf(k, scheme)[static_cast<std::size_t>(level)];
}

double QosModel::conditional_tail(int k, int level, Scheme scheme) const {
  OAQ_REQUIRE(level >= 0 && level <= 3, "QoS level must be in 0..3");
  const auto pmf = conditional_pmf(k, scheme);
  double sum = 0.0;
  for (int y = level; y <= 3; ++y) sum += pmf[static_cast<std::size_t>(y)];
  return sum;
}

}  // namespace oaq
