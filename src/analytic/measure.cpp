#include "analytic/measure.hpp"

#include "common/error.hpp"

namespace oaq {

double QosMeasure::tail(int level) const {
  OAQ_REQUIRE(level >= 0 && level <= 3, "QoS level must be in 0..3");
  double sum = 0.0;
  for (int y = level; y <= 3; ++y) sum += pmf[static_cast<std::size_t>(y)];
  return sum;
}

double QosMeasure::at(int level) const {
  OAQ_REQUIRE(level >= 0 && level <= 3, "QoS level must be in 0..3");
  return pmf[static_cast<std::size_t>(level)];
}

QosMeasure qos_measure(const QosModel& model, const DiscretePmf& capacity,
                       Scheme scheme) {
  OAQ_REQUIRE(capacity.total_weight() > 0.0, "capacity pmf is empty");
  QosMeasure out;
  for (const auto& [k, weight] : capacity.weights()) {
    OAQ_REQUIRE(k >= 0, "capacity cannot be negative");
    const double pk = weight / capacity.total_weight();
    const auto cond = model.conditional_pmf(k, scheme);
    for (std::size_t y = 0; y < 4; ++y) out.pmf[y] += pk * cond[y];
  }
  return out;
}

}  // namespace oaq
