// Eq. (3): composition of the conditional QoS model with the plane-capacity
// distribution — P(Y = y) = Σ_k P(Y = y | k)·P(k).
#pragma once

#include <array>

#include "analytic/qos_model.hpp"
#include "common/stats.hpp"

namespace oaq {

/// Unconditional QoS distribution for one scheme.
struct QosMeasure {
  std::array<double, 4> pmf{0.0, 0.0, 0.0, 0.0};

  /// P(Y >= y) — the paper's headline measure.
  [[nodiscard]] double tail(int level) const;
  /// P(Y = y).
  [[nodiscard]] double at(int level) const;
};

/// Evaluate Eq. (3) against a plane-capacity pmf (e.g. from
/// fault/plane_capacity). Capacity values are taken as-is; k = 0 means the
/// target escapes surveillance.
[[nodiscard]] QosMeasure qos_measure(const QosModel& model,
                                     const DiscretePmf& capacity,
                                     Scheme scheme);

}  // namespace oaq
