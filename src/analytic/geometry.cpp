#include "analytic/geometry.hpp"

#include <cmath>

#include "common/error.hpp"

namespace oaq {

PlaneGeometry::PlaneGeometry(Duration theta, Duration tc)
    : theta_(theta), tc_(tc) {
  OAQ_REQUIRE(theta > Duration::zero(), "orbit period must be positive");
  OAQ_REQUIRE(tc > Duration::zero() && tc < theta,
              "coverage time must be in (0, period)");
}

Duration PlaneGeometry::tr(int k) const {
  OAQ_REQUIRE(k > 0, "revisit time needs at least one satellite");
  return theta_ / static_cast<double>(k);
}

Duration PlaneGeometry::l2(int k) const {
  const Duration t = tr(k);
  return t < tc_ ? tc_ - t : t - tc_;
}

Duration PlaneGeometry::alpha_length(int k) const { return l1(k) - l2(k); }

int PlaneGeometry::indicator(int k) const { return tr(k) < tc_ ? 1 : 0; }

int PlaneGeometry::max_chain(int k, Duration tau) const {
  OAQ_REQUIRE(!overlapping(k),
              "Eq. (2) applies to underlapping planes (I[k] = 0)");
  OAQ_REQUIRE(tau > Duration::zero(), "deadline must be positive");
  if (tau <= l2(k)) return 1;
  const double extra = std::floor((tau - l2(k)) / l1(k));
  return 2 + static_cast<int>(extra);
}

int PlaneGeometry::min_overlapping_k() const {
  // Tr[k] < Tc  ⇔  k > θ/Tc; the smallest such integer.
  const double ratio = theta_ / tc_;
  const int k = static_cast<int>(std::floor(ratio)) + 1;
  return k;
}

}  // namespace oaq
