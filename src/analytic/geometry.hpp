// Plane footprint-trajectory geometry (paper §2 and Fig. 5).
//
// For an orbital plane with period θ, per-satellite coverage time Tc and k
// active evenly spaced satellites:
//   Tr[k] = θ/k                      revisit time
//   L1[k] = Tr[k]                    the period of the centerline pattern
//   L2[k] = |Tc − Tr[k]|             overlap window (I=1) or gap (I=0)
//   I[k]  = 1 iff Tr[k] < Tc         footprint overlap indicator, Eq. (1)
//   M[k]                             chain-length upper bound, Eq. (2)
#pragma once

#include "common/units.hpp"

namespace oaq {

/// Closed-form geometry of one plane's centerline coverage pattern.
class PlaneGeometry {
 public:
  /// Defaults are the reference constellation: θ = 90 min, Tc = 9 min.
  PlaneGeometry() : PlaneGeometry(Duration::minutes(90), Duration::minutes(9)) {}
  PlaneGeometry(Duration theta, Duration tc);

  [[nodiscard]] Duration theta() const { return theta_; }
  [[nodiscard]] Duration tc() const { return tc_; }

  /// Revisit time Tr[k] = θ/k.
  [[nodiscard]] Duration tr(int k) const;
  /// L1[k] = Tr[k] (pattern period).
  [[nodiscard]] Duration l1(int k) const { return tr(k); }
  /// L2[k] = |Tc − Tr[k]|.
  [[nodiscard]] Duration l2(int k) const;
  /// Single-coverage stretch length L1[k] − L2[k] per period.
  [[nodiscard]] Duration alpha_length(int k) const;

  /// Eq. (1): 1 when footprints overlap (Tr < Tc), else 0.
  [[nodiscard]] int indicator(int k) const;
  [[nodiscard]] bool overlapping(int k) const { return indicator(k) == 1; }

  /// Eq. (2): upper bound M[k] on the number of satellites that can
  /// consecutively capture a signal given deadline τ (underlapping planes).
  [[nodiscard]] int max_chain(int k, Duration tau) const;

  /// Smallest k for which footprints overlap (11 for the reference
  /// constellation: Tr[11] = 8.18 < 9 while Tr[10] = 9 ≥ 9).
  [[nodiscard]] int min_overlapping_k() const;

 private:
  Duration theta_;
  Duration tc_;
};

}  // namespace oaq
