// Cramér–Rao lower bound for Doppler geolocation.
//
// Gives the best achievable 1-σ position error for a measurement set,
// independent of the estimator. Used (a) to validate that the WLS solver is
// efficient, and (b) to predict the accuracy gain of each additional
// cooperating pass (the quantity behind termination condition TC-1).
#pragma once

#include <vector>

#include "common/matrix.hpp"
#include "rf/doppler.hpp"

namespace oaq {

/// Fisher information of a measurement set about (lat, lon[, carrier_khz]),
/// evaluated at the true emitter location and carrier.
[[nodiscard]] Matrix fisher_information(
    const std::vector<FoaMeasurement>& measurements, const GeoPoint& truth,
    double carrier_hz, bool earth_rotation, bool estimate_carrier = true);

/// CRLB on the horizontal position error (1-σ, km): the position block of
/// the inverse Fisher information mapped onto the sphere.
[[nodiscard]] double crlb_position_km(
    const std::vector<FoaMeasurement>& measurements, const GeoPoint& truth,
    double carrier_hz, bool earth_rotation, bool estimate_carrier = true);

}  // namespace oaq
