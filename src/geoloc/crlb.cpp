#include "geoloc/crlb.hpp"

#include <cmath>

#include "common/error.hpp"

namespace oaq {

Matrix fisher_information(const std::vector<FoaMeasurement>& measurements,
                          const GeoPoint& truth, double carrier_hz,
                          bool earth_rotation, bool estimate_carrier) {
  OAQ_REQUIRE(!measurements.empty(), "need measurements");
  OAQ_REQUIRE(carrier_hz > 0.0, "carrier must be positive");
  const DopplerModel model(earth_rotation);
  const std::size_t np = estimate_carrier ? 3 : 2;
  const double steps[3] = {1e-7, 1e-7, 1e-4};  // rad, rad, kHz

  Matrix info(np, np);
  for (const auto& m : measurements) {
    double grad[3] = {0.0, 0.0, 0.0};
    for (std::size_t j = 0; j < np; ++j) {
      double lat_lo = truth.lat_rad, lat_hi = truth.lat_rad;
      double lon_lo = truth.lon_rad, lon_hi = truth.lon_rad;
      double c_lo = carrier_hz, c_hi = carrier_hz;
      switch (j) {
        case 0: lat_lo -= steps[0]; lat_hi += steps[0]; break;
        case 1: lon_lo -= steps[1]; lon_hi += steps[1]; break;
        case 2: c_lo -= steps[2] * 1000.0; c_hi += steps[2] * 1000.0; break;
      }
      const double f_lo = model.predicted_frequency_hz(
          m.sat_state, GeoPoint{lat_lo, lon_lo}, c_lo, m.time);
      const double f_hi = model.predicted_frequency_hz(
          m.sat_state, GeoPoint{lat_hi, lon_hi}, c_hi, m.time);
      grad[j] = (f_hi - f_lo) / (2.0 * steps[j]);
    }
    const double inv_var = 1.0 / (m.sigma_hz * m.sigma_hz);
    for (std::size_t a = 0; a < np; ++a) {
      for (std::size_t b = 0; b < np; ++b) {
        info(a, b) += inv_var * grad[a] * grad[b];
      }
    }
  }
  return info;
}

double crlb_position_km(const std::vector<FoaMeasurement>& measurements,
                        const GeoPoint& truth, double carrier_hz,
                        bool earth_rotation, bool estimate_carrier) {
  const Matrix info = fisher_information(measurements, truth, carrier_hz,
                                         earth_rotation, estimate_carrier);
  const Matrix cov = info.inverse();
  const double cs = std::cos(truth.lat_rad);
  return kEarthRadiusKm *
         std::sqrt(std::max(0.0, cov(0, 0) + cs * cs * cov(1, 1)));
}

}  // namespace oaq
