#include "geoloc/dual_fix.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace oaq {

DualSatelliteFix::DualSatelliteFix(Options options) : options_(options) {
  OAQ_REQUIRE(options.max_iterations > 0, "need at least one iteration");
  OAQ_REQUIRE(options.step_tolerance > 0.0, "tolerance must be positive");
}

DualFixEstimate DualSatelliteFix::solve(
    const std::vector<PairMeasurement>& measurements,
    const GeoPoint& initial_position, double carrier_hz) const {
  OAQ_REQUIRE(!measurements.empty(), "need at least one pair measurement");
  OAQ_REQUIRE(carrier_hz > 0.0, "carrier must be positive");

  const TdoaModel model(options_.earth_rotation);
  double lat = initial_position.lat_rad;
  double lon = initial_position.lon_rad;
  const double step = 1e-7;  // finite-difference step, radians

  auto residuals = [&](double la, double lo, Matrix& r, Matrix& jac) {
    const std::size_t nm = measurements.size();
    r = Matrix(2 * nm, 1);
    jac = Matrix(2 * nm, 2);
    for (std::size_t i = 0; i < nm; ++i) {
      const auto& m = measurements[i];
      auto predict = [&](double pla, double plo, double& td, double& fd) {
        const GeoPoint p{pla, plo};
        td = model.predicted_tdoa_s(m.state_a, m.state_b, p, m.time);
        fd = model.predicted_fdoa_hz(m.state_a, m.state_b, p, carrier_hz,
                                     m.time);
      };
      double td0, fd0;
      predict(la, lo, td0, fd0);
      r(2 * i, 0) = (m.tdoa_s - td0) / m.sigma_tdoa_s;
      r(2 * i + 1, 0) = (m.fdoa_hz - fd0) / m.sigma_fdoa_hz;
      for (int j = 0; j < 2; ++j) {
        double td_lo, fd_lo, td_hi, fd_hi;
        predict(la - (j == 0 ? step : 0.0), lo - (j == 1 ? step : 0.0),
                td_lo, fd_lo);
        predict(la + (j == 0 ? step : 0.0), lo + (j == 1 ? step : 0.0),
                td_hi, fd_hi);
        jac(2 * i, static_cast<std::size_t>(j)) =
            (td_hi - td_lo) / (2.0 * step) / m.sigma_tdoa_s;
        jac(2 * i + 1, static_cast<std::size_t>(j)) =
            (fd_hi - fd_lo) / (2.0 * step) / m.sigma_fdoa_hz;
      }
    }
  };

  DualFixEstimate est;
  Matrix r, jac;
  residuals(lat, lon, r, jac);
  double cost = (r.transposed() * r)(0, 0);
  double lambda = 1e-3;

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    est.iterations = iter + 1;
    Matrix normal = jac.transposed() * jac;
    const Matrix rhs = jac.transposed() * r;
    Matrix damped = normal;
    for (std::size_t j = 0; j < 2; ++j) {
      damped(j, j) += lambda * std::max(normal(j, j), 1e-12);
    }
    const Matrix delta = damped.solve(rhs);
    const double trial_lat =
        std::clamp(lat + delta(0, 0), -kPi / 2.0, kPi / 2.0);
    const double trial_lon = wrap_pi(lon + delta(1, 0));
    Matrix r_t, jac_t;
    residuals(trial_lat, trial_lon, r_t, jac_t);
    const double cost_t = (r_t.transposed() * r_t)(0, 0);
    if (cost_t < cost) {
      const double improvement = cost - cost_t;
      lat = trial_lat;
      lon = trial_lon;
      r = r_t;
      jac = jac_t;
      cost = cost_t;
      lambda = std::max(lambda * 0.3, 1e-12);
      if (vector_norm(delta) < options_.step_tolerance ||
          improvement <= 1e-10 * (1.0 + cost)) {
        est.converged = true;
        break;
      }
    } else {
      if (cost_t - cost <= 1e-9 * (1.0 + cost)) {
        est.converged = true;
        break;
      }
      lambda *= 8.0;
      if (lambda > 1e12) break;
    }
  }

  const Matrix info = jac.transposed() * jac;
  est.covariance = info.inverse();
  est.position = GeoPoint{lat, lon};
  const double cs = std::cos(lat);
  est.position_error_1sigma_km =
      kEarthRadiusKm * std::sqrt(std::max(
                           0.0, est.covariance(0, 0) +
                                    cs * cs * est.covariance(1, 1)));
  est.rms_residual = std::sqrt(
      cost / static_cast<double>(2 * measurements.size()));
  return est;
}

}  // namespace oaq
