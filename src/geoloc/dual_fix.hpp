// Instantaneous dual-satellite fix from TDOA/FDOA pair measurements.
//
// The accuracy counterpart of simultaneous multiple coverage (QoS level 3):
// each pair observation supplies two independent ground curves (an
// isochrone and an isodoppler), so even a single simultaneous snapshot
// localizes the emitter without the single-satellite left/right ambiguity.
// Used to ground Table 1's accuracy ordering physically
// (bench/accuracy_by_basis).
#pragma once

#include "common/matrix.hpp"
#include "rf/tdoa.hpp"

namespace oaq {

/// Result of a dual-satellite solve (parameters: lat_rad, lon_rad).
struct DualFixEstimate {
  GeoPoint position;
  Matrix covariance;
  double position_error_1sigma_km = 0.0;
  double rms_residual = 0.0;  ///< whitened residual RMS
  int iterations = 0;
  bool converged = false;
};

/// Gauss–Newton solver over (lat, lon) from PairMeasurements.
class DualSatelliteFix {
 public:
  struct Options {
    int max_iterations = 50;
    double step_tolerance = 1e-12;
    bool earth_rotation = true;
  };

  DualSatelliteFix() : DualSatelliteFix(Options{}) {}
  explicit DualSatelliteFix(Options options);

  /// `carrier_hz` is the nominal carrier used to predict FDOA; a few-kHz
  /// carrier error scales FDOA by ~1e-5 and is negligible.
  [[nodiscard]] DualFixEstimate solve(
      const std::vector<PairMeasurement>& measurements,
      const GeoPoint& initial_position, double carrier_hz) const;

 private:
  Options options_;
};

}  // namespace oaq
