// Iterative weighted least-squares geolocation from Doppler measurements.
//
// This is the estimator behind the paper's accuracy-improvement iterations:
// given FOA measurements, a damped Gauss–Newton (Levenberg–Marquardt)
// solver recovers the emitter position (and optionally its true carrier
// frequency, which is unknown in practice). A Gaussian prior hook supports
// sequential localization across satellite passes.
#pragma once

#include <optional>
#include <vector>

#include "common/matrix.hpp"
#include "rf/doppler.hpp"

namespace oaq {

/// Result of a geolocation solve. Parameter order in `covariance` is
/// (lat_rad, lon_rad[, carrier_khz]).
struct GeolocationEstimate {
  GeoPoint position;
  double carrier_hz = 0.0;
  Matrix covariance;                     ///< posterior parameter covariance
  Matrix information;                    ///< posterior information (J'WJ + prior)
  double position_error_1sigma_km = 0.0; ///< horizontal 1-σ error on the sphere
  double rms_residual_hz = 0.0;
  int iterations = 0;
  bool converged = false;
};

/// Gaussian prior on the parameters for sequential updates.
struct GeolocationPrior {
  GeoPoint position;
  double carrier_hz = 0.0;
  Matrix information;  ///< prior information matrix (inverse covariance)
};

/// Damped Gauss–Newton weighted least-squares solver.
class WlsGeolocator {
 public:
  struct Options {
    int max_iterations = 60;
    double step_tolerance = 1e-12;    ///< convergence on parameter step norm
    double initial_damping = 1e-3;    ///< LM λ; scaled by the normal diagonal
    bool estimate_carrier = true;     ///< solve for the unknown carrier too
    bool earth_rotation = true;       ///< must match measurement generation
  };

  WlsGeolocator();  // default options
  explicit WlsGeolocator(Options options);

  [[nodiscard]] const Options& options() const { return options_; }

  /// Solve from scratch. `initial_position` must be a rough guess (within a
  /// footprint of the truth is ample); `initial_carrier_hz` likewise.
  [[nodiscard]] GeolocationEstimate solve(
      const std::vector<FoaMeasurement>& measurements,
      const GeoPoint& initial_position, double initial_carrier_hz) const;

  /// Solve with a Gaussian prior from earlier passes (sequential update).
  [[nodiscard]] GeolocationEstimate solve_with_prior(
      const std::vector<FoaMeasurement>& measurements,
      const GeolocationPrior& prior) const;

  /// Data-driven initial position guess: the sub-satellite point at the
  /// epoch of steepest frequency descent (closest approach).
  [[nodiscard]] static GeoPoint initial_guess(
      const std::vector<FoaMeasurement>& measurements);

  /// Number of solved parameters (2, or 3 with carrier estimation).
  [[nodiscard]] std::size_t parameter_count() const {
    return options_.estimate_carrier ? 3 : 2;
  }

 private:
  [[nodiscard]] GeolocationEstimate run(
      const std::vector<FoaMeasurement>& measurements,
      const GeoPoint& initial_position, double initial_carrier_hz,
      const GeolocationPrior* prior) const;

  Options options_;
};

}  // namespace oaq
