// Sequential localization across satellite passes (Levanon '98,
// Chan & Towers '92).
//
// Each pass contributes a measurement batch; the posterior of pass n is the
// Gaussian prior of pass n+1 (information-form recursion). This is the
// mechanism the OAQ protocol exploits: every satellite that consecutively
// revisits the emitter tightens the estimate.
#pragma once

#include "geoloc/wls.hpp"

namespace oaq {

/// Stateful sequential (multi-pass) localizer.
class SequentialLocalizer {
 public:
  SequentialLocalizer();  // default solver options
  explicit SequentialLocalizer(WlsGeolocator::Options options);

  /// Incorporate one pass worth of measurements. For the first pass an
  /// initial position guess is derived from the data unless `hint` is
  /// given; later passes start from the running estimate.
  /// Returns the refreshed estimate.
  const GeolocationEstimate& incorporate(
      const std::vector<FoaMeasurement>& batch,
      std::optional<GeoPoint> hint = std::nullopt,
      double initial_carrier_hz = 400.0e6);

  [[nodiscard]] int passes_incorporated() const { return passes_; }
  [[nodiscard]] bool has_estimate() const { return passes_ > 0; }
  [[nodiscard]] const GeolocationEstimate& current() const;

  /// Reset to the no-information state.
  void reset();

 private:
  WlsGeolocator solver_;
  GeolocationEstimate estimate_;
  int passes_ = 0;
};

}  // namespace oaq
