// Parametric accuracy model for the coordination protocol.
//
// The protocol simulator must not run a full WLS solve inside every
// Monte-Carlo episode; what it needs is the *expected* estimation error as
// a function of the coverage basis, to drive termination condition TC-1
// ("the estimated error becomes sufficiently small"). The defaults below
// are calibrated against the CRLB/WLS experiment (bench/geoloc_accuracy):
// a single pass leaves the along/cross-track ambiguity and a several-km
// error; each sequential pass multiplies the error by a contraction
// factor; simultaneous dual coverage "practically removes the ambiguity"
// (paper §2), giving a sub-km error immediately.
#pragma once

#include "common/error.hpp"

namespace oaq {

/// Expected 1-σ geolocation error by coverage basis.
class AccuracyModel {
 public:
  struct Params {
    double single_pass_km = 8.0;        ///< one pass, one satellite
    double sequential_contraction = 0.35;  ///< per additional sequential pass
    double simultaneous_km = 0.8;       ///< simultaneous dual coverage
  };

  AccuracyModel() : AccuracyModel(Params{}) {}

  explicit AccuracyModel(Params params) : params_(params) {
    OAQ_REQUIRE(params.single_pass_km > 0.0, "error must be positive");
    OAQ_REQUIRE(params.sequential_contraction > 0.0 &&
                    params.sequential_contraction < 1.0,
                "contraction must be in (0,1)");
    OAQ_REQUIRE(params.simultaneous_km > 0.0, "error must be positive");
  }

  [[nodiscard]] const Params& params() const { return params_; }

  /// Expected error after `passes` sequential single-satellite passes.
  [[nodiscard]] double sequential_error_km(int passes) const {
    OAQ_REQUIRE(passes >= 1, "need at least one pass");
    double e = params_.single_pass_km;
    for (int i = 1; i < passes; ++i) e *= params_.sequential_contraction;
    return e;
  }

  /// Expected error of a simultaneous dual-coverage solution.
  [[nodiscard]] double simultaneous_error_km() const {
    return params_.simultaneous_km;
  }

  /// Number of sequential passes needed to drive the error below
  /// `threshold_km` (TC-1), or `max_passes` if not reached.
  [[nodiscard]] int passes_to_reach(double threshold_km,
                                    int max_passes = 64) const {
    OAQ_REQUIRE(threshold_km > 0.0, "threshold must be positive");
    for (int n = 1; n <= max_passes; ++n) {
      if (sequential_error_km(n) <= threshold_km) return n;
    }
    return max_passes;
  }

 private:
  Params params_;
};

}  // namespace oaq
