#include "geoloc/sequential.hpp"

#include "common/error.hpp"

namespace oaq {

SequentialLocalizer::SequentialLocalizer()
    : SequentialLocalizer(WlsGeolocator::Options{}) {}

SequentialLocalizer::SequentialLocalizer(WlsGeolocator::Options options)
    : solver_(options) {}

const GeolocationEstimate& SequentialLocalizer::current() const {
  OAQ_REQUIRE(passes_ > 0, "no passes incorporated yet");
  return estimate_;
}

void SequentialLocalizer::reset() {
  estimate_ = {};
  passes_ = 0;
}

const GeolocationEstimate& SequentialLocalizer::incorporate(
    const std::vector<FoaMeasurement>& batch, std::optional<GeoPoint> hint,
    double initial_carrier_hz) {
  if (passes_ == 0) {
    const GeoPoint guess = hint ? *hint : WlsGeolocator::initial_guess(batch);
    estimate_ = solver_.solve(batch, guess, initial_carrier_hz);
  } else {
    GeolocationPrior prior;
    prior.position = estimate_.position;
    prior.carrier_hz = estimate_.carrier_hz;
    prior.information = estimate_.information;
    estimate_ = solver_.solve_with_prior(batch, prior);
  }
  ++passes_;
  return estimate_;
}

}  // namespace oaq
