#include "geoloc/wls.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace oaq {
namespace {

/// Internal parameter vector: (lat_rad, lon_rad[, carrier_khz]).
struct Params {
  double lat = 0.0;
  double lon = 0.0;
  double carrier_khz = 0.0;
};

Params params_from(const GeoPoint& p, double carrier_hz) {
  return {p.lat_rad, p.lon_rad, carrier_hz / 1000.0};
}

/// Predicted received frequency for the parameter vector.
double predict_hz(const DopplerModel& model, const FoaMeasurement& m,
                  const Params& th) {
  return model.predicted_frequency_hz(m.sat_state, GeoPoint{th.lat, th.lon},
                                      th.carrier_khz * 1000.0, m.time);
}

}  // namespace

WlsGeolocator::WlsGeolocator() : WlsGeolocator(Options{}) {}

WlsGeolocator::WlsGeolocator(Options options) : options_(options) {
  OAQ_REQUIRE(options.max_iterations > 0, "need at least one iteration");
  OAQ_REQUIRE(options.step_tolerance > 0.0, "tolerance must be positive");
}

GeoPoint WlsGeolocator::initial_guess(
    const std::vector<FoaMeasurement>& measurements) {
  OAQ_REQUIRE(measurements.size() >= 2, "need >= 2 measurements for a guess");
  // The received frequency falls fastest at the time of closest approach;
  // pick the epoch pair with the steepest negative slope.
  std::size_t best = 0;
  double steepest = 0.0;
  for (std::size_t i = 1; i < measurements.size(); ++i) {
    const double dt =
        (measurements[i].time - measurements[i - 1].time).to_seconds();
    if (dt <= 0.0) continue;
    const double slope =
        (measurements[i].frequency_hz - measurements[i - 1].frequency_hz) / dt;
    if (slope < steepest) {
      steepest = slope;
      best = i;
    }
  }
  const auto& m = measurements[best];
  return ecef_to_geo(m.sat_state.position_km);  // sub-satellite direction
}

GeolocationEstimate WlsGeolocator::solve(
    const std::vector<FoaMeasurement>& measurements,
    const GeoPoint& initial_position, double initial_carrier_hz) const {
  return run(measurements, initial_position, initial_carrier_hz, nullptr);
}

GeolocationEstimate WlsGeolocator::solve_with_prior(
    const std::vector<FoaMeasurement>& measurements,
    const GeolocationPrior& prior) const {
  OAQ_REQUIRE(prior.information.rows() == parameter_count() &&
                  prior.information.cols() == parameter_count(),
              "prior information shape mismatch");
  return run(measurements, prior.position, prior.carrier_hz, &prior);
}

GeolocationEstimate WlsGeolocator::run(
    const std::vector<FoaMeasurement>& measurements,
    const GeoPoint& initial_position, double initial_carrier_hz,
    const GeolocationPrior* prior) const {
  const std::size_t np = parameter_count();
  OAQ_REQUIRE(measurements.size() >= np,
              "underdetermined: need at least as many measurements as "
              "parameters");
  OAQ_REQUIRE(initial_carrier_hz > 0.0, "carrier guess must be positive");

  const DopplerModel model(options_.earth_rotation);
  Params th = params_from(initial_position, initial_carrier_hz);
  const Params th_prior =
      prior ? params_from(prior->position, prior->carrier_hz) : th;

  // Finite-difference steps per parameter (radians, radians, kHz).
  const double steps[3] = {1e-7, 1e-7, 1e-4};

  auto residuals_weighted = [&](const Params& p, Matrix& r, Matrix& jac) {
    const std::size_t nm = measurements.size();
    r = Matrix(nm, 1);
    jac = Matrix(nm, np);
    for (std::size_t i = 0; i < nm; ++i) {
      const auto& m = measurements[i];
      const double w = 1.0 / m.sigma_hz;  // whitening weight
      r(i, 0) = w * (m.frequency_hz - predict_hz(model, m, p));
      for (std::size_t j = 0; j < np; ++j) {
        Params lo = p, hi = p;
        double* fields_lo[3] = {&lo.lat, &lo.lon, &lo.carrier_khz};
        double* fields_hi[3] = {&hi.lat, &hi.lon, &hi.carrier_khz};
        *fields_lo[j] -= steps[j];
        *fields_hi[j] += steps[j];
        const double df = (predict_hz(model, m, hi) -
                           predict_hz(model, m, lo)) /
                          (2.0 * steps[j]);
        jac(i, j) = w * df;
      }
    }
  };

  GeolocationEstimate est;
  double lambda = options_.initial_damping;
  Matrix r, jac;
  residuals_weighted(th, r, jac);
  double cost = (r.transposed() * r)(0, 0);

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    est.iterations = iter + 1;
    Matrix normal = jac.transposed() * jac;
    Matrix rhs = jac.transposed() * r;
    if (prior) {
      normal += prior->information;
      // Gradient of the prior term pulls toward th_prior.
      Matrix dp(np, 1);
      dp(0, 0) = th_prior.lat - th.lat;
      dp(1, 0) = th_prior.lon - th.lon;
      if (np == 3) dp(2, 0) = th_prior.carrier_khz - th.carrier_khz;
      rhs += prior->information * dp;
    }
    // Levenberg damping scaled by the normal diagonal (handles the
    // rad-vs-kHz scale disparity).
    Matrix damped = normal;
    for (std::size_t j = 0; j < np; ++j) {
      damped(j, j) += lambda * std::max(normal(j, j), 1e-12);
    }
    const Matrix delta = damped.solve(rhs);

    Params trial = th;
    trial.lat += delta(0, 0);
    trial.lon += delta(1, 0);
    if (np == 3) trial.carrier_khz += delta(2, 0);
    trial.lat = std::clamp(trial.lat, -kPi / 2.0, kPi / 2.0);
    trial.lon = wrap_pi(trial.lon);

    Matrix r_trial, jac_trial;
    residuals_weighted(trial, r_trial, jac_trial);
    double cost_trial = (r_trial.transposed() * r_trial)(0, 0);
    if (prior) {
      Matrix dp(np, 1);
      dp(0, 0) = trial.lat - th_prior.lat;
      dp(1, 0) = trial.lon - th_prior.lon;
      if (np == 3) dp(2, 0) = trial.carrier_khz - th_prior.carrier_khz;
      cost_trial += (dp.transposed() * (prior->information * dp))(0, 0);
    }

    if (cost_trial < cost) {
      const double improvement = cost - cost_trial;
      th = trial;
      r = r_trial;
      jac = jac_trial;
      cost = cost_trial;
      lambda = std::max(lambda * 0.3, 1e-12);
      // Converged when the step is tiny or the cost has stagnated (the
      // latter matters for the weakly observable cross-track direction of
      // single-pass Doppler geometry).
      if (vector_norm(delta) < options_.step_tolerance ||
          improvement <= 1e-10 * (1.0 + cost)) {
        est.converged = true;
        break;
      }
    } else {
      // Rejected step that would barely change the cost: we are at a local
      // optimum and no damping will improve it further.
      if (cost_trial - cost <= 1e-9 * (1.0 + cost)) {
        est.converged = true;
        break;
      }
      lambda *= 8.0;
      if (lambda > 1e12) break;  // stuck
    }
  }

  // Posterior information and covariance at the solution.
  Matrix info = jac.transposed() * jac;
  if (prior) info += prior->information;
  est.information = info;
  est.covariance = info.inverse();
  est.position = GeoPoint{th.lat, th.lon};
  est.carrier_hz = th.carrier_khz * 1000.0;
  const double var_lat = est.covariance(0, 0);
  const double var_lon = est.covariance(1, 1);
  const double cs = std::cos(th.lat);
  est.position_error_1sigma_km =
      kEarthRadiusKm * std::sqrt(std::max(0.0, var_lat + cs * cs * var_lon));
  const double nm = static_cast<double>(measurements.size());
  est.rms_residual_hz = std::sqrt((r.transposed() * r)(0, 0) / nm);
  return est;
}

}  // namespace oaq
