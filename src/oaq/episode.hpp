// One signal episode under the OAQ or BAQ scheme (paper §3.2).
//
// The engine wires per-satellite protocol agents over the DES kernel and
// crosslink network and plays out a single signal:
//
//   detection → (simultaneous coverage? → level-3 attempt)
//             → OAQ overlap: withhold, wait for the next overlap window
//             → OAQ underlap: coordination chain S1 → S2 → ... with
//               termination conditions
//                 TC-1  estimated error below threshold,
//                 TC-2  getTime() − t0 > τ − (n·δ + Tg),
//                 TC-3  signal stops (detected by a requested peer whose
//                       footprint finds no signal),
//               "coordination done" propagation downstream, and per-member
//               wait deadlines τ − (n−1)·δ that guarantee a timely alert
//               even when an upstream peer goes fail-silent (Fig. 4)
//             → BAQ: deliver after the initial computation, no coordination.
//
// Two messaging variants (§3.2 last paragraph):
//   * backward messaging (default): done-notifications propagate down the
//     chain; the wait deadline guarantees delivery under fail-silence;
//   * forward responsibility: the requested peer is responsible for
//     forwarding its predecessor's result if it cannot compute — cheaper,
//     but an alert is lost if that peer goes fail-silent.
#pragma once

#include <cmath>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "geoloc/accuracy.hpp"
#include "net/crosslink.hpp"
#include "oaq/messages.hpp"
#include "oaq/schedule.hpp"
#include "sim/simulator.hpp"

namespace oaq {

/// Protocol parameters.
struct ProtocolConfig {
  Duration tau = Duration::minutes(5);    ///< alert deadline τ (from t0)
  Duration delta = Duration::seconds(12); ///< max inter-satellite delay δ
  Duration tg = Duration::seconds(6);     ///< max initial computation time Tg
  Rate nu = Rate::per_minute(30.0);       ///< iterative computation rate ν
  /// Cap on a single iterative computation (the paper's bounded-Tg
  /// assumption behind the TC-2 guarantee). Infinite = pure Exp(ν), the
  /// analytic model's assumption.
  Duration computation_cap = Duration::infinity();
  /// TC-1 threshold; <= 0 disables early termination on accuracy.
  double error_threshold_km = 0.0;
  /// Crosslink message-loss probability (downlink alerts are exempt).
  /// The backward-messaging guarantee keeps delivery at-least-once under
  /// loss; lost "done" notifications surface as duplicate alerts.
  double crosslink_loss_probability = 0.0;
  bool backward_messaging = true;  ///< false = forward-responsibility variant
  /// Reliable crosslinks: failed sends are retried with exponential
  /// backoff (ack-timeout 2δ·base^i after attempt i), at most
  /// `link_retry_limit` times. The protocol's deadline math then uses
  /// effective_delta() in place of δ so the TC-2 margin and wait deadlines
  /// absorb the worst-case retry latency.
  bool reliable_links = false;
  int link_retry_limit = 2;
  double link_backoff_base = 2.0;
  /// Self-healing crosslinks (ISSUE 10): a per-plane-pair EWMA health
  /// estimator demotes flapping links; the chain layer avoids demoted
  /// links for new coordination requests until a deterministic probation
  /// (escalating per consecutive demotion, capped by τ so probes stay
  /// τ-feasible) elapses. Off by default — the health path is entirely
  /// branch-gated in CrosslinkNetwork.
  bool self_healing_links = false;
  double link_health_alpha = 0.2;
  double link_demote_below = 0.5;
  double link_restore_above = 0.7;
  Duration link_probation = Duration::seconds(60);
  double link_probation_backoff = 2.0;
  AccuracyModel accuracy{};

  /// Worst-case delivery delay of one logical message: δ when links are
  /// best-effort; with R retries the failed attempts cost their ack
  /// timeouts 2δ·base^i before the final flight's δ, so
  ///   δ_eff = 2δ·(base^R − 1)/(base − 1) + δ   (base > 1)
  ///   δ_eff = 2δ·R + δ                         (base = 1).
  [[nodiscard]] Duration effective_delta() const {
    if (!reliable_links || link_retry_limit == 0) return delta;
    const auto r = static_cast<double>(link_retry_limit);
    const double base = link_backoff_base;
    const double timeouts =
        base > 1.0 ? (std::pow(base, r) - 1.0) / (base - 1.0) : r;
    return 2.0 * timeouts * delta + delta;
  }
};

/// Infrastructure-level telemetry of one episode run, filled by
/// EpisodeEngine::run from the network and DES kernel counters — the raw
/// material of the harness-level metrics registry.
struct EpisodeTelemetry {
  std::uint64_t messages_sent = 0;       ///< crosslink + downlink sends
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped_loss = 0;
  std::uint64_t messages_dropped_dead = 0;  ///< dead sender/receiver/unknown
  std::uint64_t messages_dropped_link = 0;  ///< outage / partition windows
  std::uint64_t retries = 0;                ///< reliable-mode retransmissions
  std::uint64_t retries_exhausted = 0;      ///< drops after >= 1 retry
  std::uint64_t faults_injected = 0;        ///< FaultInjector activations
  std::uint64_t sim_events = 0;             ///< DES events processed
  std::uint64_t sim_peak_pending = 0;       ///< DES queue-depth high water
  // Merge-run ready-queue maintenance counters (Simulator::QueueStats).
  std::uint64_t sim_runs_created = 0;
  std::uint64_t sim_run_merges = 0;
  std::uint64_t sim_tombstones_purged = 0;
  std::uint64_t sim_max_run_length = 0;
  // Link-health + stochastic-fault telemetry (ISSUE 10; all zero unless
  // self-healing links or stochastic clauses are in play).
  std::uint64_t links_demoted = 0;       ///< healthy → demoted transitions
  std::uint64_t links_restored = 0;      ///< demoted → healthy transitions
  std::uint64_t links_demoted_end = 0;   ///< still demoted at episode end
  std::uint64_t link_probes = 0;         ///< attempts over demoted links
  std::uint64_t link_probations = 0;     ///< demotions + escalations
  std::uint64_t lifecycle_deaths = 0;    ///< sat_lifecycle deaths fired
  std::uint64_t lifecycle_spares = 0;    ///< sat_lifecycle spares fired
  std::uint64_t degradation_active_end = 0;  ///< windowed degradation left
};

/// What happened in one episode.
struct EpisodeResult {
  QosLevel level = QosLevel::kMissed;  ///< level of the first alert
  bool alert_delivered = false;
  bool timely = false;          ///< first alert sent by t0 + τ
  int alerts_sent = 0;          ///< >1 indicates a duplicate
  int chain_length = 0;         ///< satellites that contributed measurements
  /// Chain members in join order (detector first). For a target near a
  /// plane-crossing, members can come from different planes — the paper's
  /// footnote 3 notes the algorithm does not require a single plane.
  std::vector<SatelliteId> participants;
  int coordination_requests = 0;
  bool detected = false;
  TimePoint detection{};        ///< t0 (valid when detected)
  TimePoint first_alert_sent{};
  double reported_error_km = 0.0;
  /// Every chain participant either delivered, received "done", or timed
  /// out by its local deadline — nobody is left waiting (§3.2).
  bool all_participants_resolved = true;
  // Termination accounting for the InvariantChecker: every recorded
  // term_* cause counts one termination; a finish() on an agent that was
  // already resolved counts a double (a protocol bug the checker flags);
  // wait-deadline rescues explain duplicate alerts.
  int terminations = 0;
  int double_terminations = 0;
  int wait_rescues = 0;
  /// Health-aware chain re-routes: resends that skipped at least one
  /// avoided (demoted) relay. Bounded by horizon_passes × participants
  /// (invariant I9 — no routing livelock).
  int reroutes = 0;
  /// Passes in the episode's coverage horizon (the re-route search space).
  int horizon_passes = 0;
  EpisodeTelemetry telemetry;
};

class FaultPlan;         // src/fault/plan.hpp
class InvariantChecker;  // src/fault/invariants.hpp
class EpisodeLedger;     // src/obs/ledger.hpp

/// Optional fault-injection hooks of one episode run. The plan's clause
/// times are relative to the signal start; the checker (when attached)
/// audits the episode result and the DES accounting after finalize; the
/// ledger (when attached) receives every final drop, retry, and fault
/// activation attributed to this episode's row.
struct EpisodeFaultHooks {
  const FaultPlan* plan = nullptr;
  InvariantChecker* invariants = nullptr;
  EpisodeLedger* ledger = nullptr;
};

/// Runs one signal episode against a coverage schedule.
class EpisodeEngine {
 public:
  /// `scheme` selects OAQ or BAQ behaviour (Scheme from analytic/qos_model).
  EpisodeEngine(const CoverageSchedule& schedule, ProtocolConfig config,
                bool opportunity_adaptive);

  /// Simulate a signal starting at `signal_start` lasting `signal_duration`.
  /// `rng` drives computation times and message delays. Satellites listed
  /// in `fail_silent` go silent at the given times (fault injection).
  struct Fault {
    SatelliteId satellite;
    TimePoint at;
  };
  /// `known_failed`: satellites the group-membership service (src/net/
  /// membership) has already removed from the view — the coordination
  /// chain skips their passes instead of paying a wait-deadline timeout.
  /// `trace`: optional per-shard event buffer (null = tracing disabled);
  /// `episode_id` stamps the trace events (and the message target id) so
  /// a sharded Monte-Carlo run can attribute events to episodes.
  /// `hooks`: optional fault plan + invariant checker (see
  /// EpisodeFaultHooks). The injector's RNG is a dedicated fork of `rng`,
  /// so attaching a plan never perturbs the protocol's own draws.
  [[nodiscard]] EpisodeResult run(
      TimePoint signal_start, Duration signal_duration, Rng& rng,
      const std::vector<Fault>& faults = {},
      const std::set<SatelliteId>& known_failed = {},
      ShardTraceBuffer* trace = nullptr, int episode_id = 0,
      const EpisodeFaultHooks* hooks = nullptr) const;

 private:
  const CoverageSchedule* schedule_;
  ProtocolConfig config_;
  bool oaq_;
};

}  // namespace oaq
