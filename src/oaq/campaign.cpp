#include "oaq/campaign.hpp"

#include <chrono>
#include <cstdint>
#include <optional>
#include <utility>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "fault/injector.hpp"
#include "fault/invariants.hpp"
#include "fault/plan.hpp"
#include "oaq/batch_episode.hpp"
#include "orbit/shared_visibility_cache.hpp"

namespace oaq {
namespace {

/// Visibility-window quantum covering every episode a replication can arm:
/// arrivals start 60 min into the run, the horizon bounds the last start,
/// and an episode's pass queries extend at most τ plus post-roll past it.
/// One quantized window — one Kepler sweep — therefore serves the whole
/// replication, where the former fixed 1 h default recomputed a sweep per
/// hour of horizon.
Duration campaign_visibility_quantum(const CampaignConfig& config) {
  return Duration::minutes(60) + config.horizon + config.protocol.tau +
         Duration::hours(2);
}

/// Mergeable tallies for one or more campaign replications. Counters and
/// pmf weights are integral, so any grouping merges exactly; the latency
/// RunningStat is folded in a fixed replication order (one shard per
/// replication), so the floating-point result is also independent of the
/// worker count.
struct CampaignAccum {
  std::int64_t signals = 0;
  DiscretePmf levels;
  std::int64_t delivered = 0;
  std::int64_t untimely = 0;
  std::int64_t duplicates = 0;
  RunningStat latency_min;
  std::int64_t contended = 0;
  double queueing_delay_s = 0.0;
  MetricsRegistry metrics;  ///< per-replication; empty when metrics are off
  InvariantChecker invariants;  ///< idle when checks are off
  EpisodeLedger ledger;  ///< per-target attribution; empty when disabled

  void merge(const CampaignAccum& other) {
    signals += other.signals;
    levels.merge(other.levels);
    delivered += other.delivered;
    untimely += other.untimely;
    duplicates += other.duplicates;
    latency_min.merge(other.latency_min);
    contended += other.contended;
    queueing_delay_s += other.queueing_delay_s;
    metrics.merge(other.metrics);
    invariants.merge(other.invariants);
    ledger.merge(other.ledger);
  }
};

/// One replication: the pre-parallel run_campaign body, seeded by `master`.
/// `trace` is this replication's shard buffer (null = tracing disabled);
/// `want_metrics` fills the accumulator's registry.
CampaignAccum run_single_campaign(const CampaignConfig& config, Rng master,
                                  ShardTraceBuffer* trace, bool want_metrics,
                                  const SharedVisibilityCache* shared_cache,
                                  SpanArena* spans) {
  const ScopedSpan replication_span(spans, "replication");
  Rng arrivals_rng = master.fork(1);
  Rng durations_rng = master.fork(2);
  Rng net_rng = master.fork(3);
  Rng phase_rng = master.fork(4);

  const std::shared_ptr<const DurationDistribution> duration_law =
      config.duration_distribution
          ? config.duration_distribution
          : std::make_shared<ExponentialDuration>(Rate::per_minute(0.2));

  Simulator sim;
  CrosslinkNetwork::Options net_opt;
  net_opt.min_delay = config.protocol.delta * 0.3;
  net_opt.max_delay = config.protocol.delta;
  net_opt.loss_probability = config.protocol.crosslink_loss_probability;
  net_opt.lossless_to_ground = true;
  net_opt.reliable = config.protocol.reliable_links;
  net_opt.retry_limit = config.protocol.link_retry_limit;
  net_opt.backoff_base = config.protocol.link_backoff_base;
  if (config.protocol.self_healing_links) {
    net_opt.health.enabled = true;
    net_opt.health.alpha = config.protocol.link_health_alpha;
    net_opt.health.demote_below = config.protocol.link_demote_below;
    net_opt.health.restore_above = config.protocol.link_restore_above;
    net_opt.health.probation = config.protocol.link_probation;
    net_opt.health.probation_backoff = config.protocol.link_probation_backoff;
    net_opt.health.probation_cap = config.protocol.tau;  // τ-feasibility cap
  }
  CrosslinkNetwork net(sim, net_opt, net_rng);
  // Episodes share the network; network events carry episode = -1 unless
  // per-envelope attribution is on (then each xlink_* event names the
  // owning target — the golden campaign trace keeps the -1 default).
  net.set_trace(trace, /*episode_id=*/-1);
  net.set_trace_attribution(config.episode_attribution);

  // Per-target attribution ledger (ISSUE 7): every final drop, retry, and
  // fault activation lands on the owning target's row. The I7 audit reads
  // it, and the caller can request a copy via config.ledger.
  CampaignAccum out;
  const bool want_ledger =
      config.check_invariants || config.ledger != nullptr;
  if (want_ledger) net.set_ledger(&out.ledger);

  // One pass pattern for the whole campaign; signal arrival times are
  // uniform over the pattern period by Poisson stationarity. Geometric
  // mode swaps the analytic plane for real constellation geometry, read
  // either from the run-wide frozen shared cache (replication-local hit
  // stats) or from a replication-private cache; both use the
  // horizon-covering quantum, so a replication needs one Kepler sweep.
  std::optional<VisibilityCache> vis_cache;
  VisibilityCacheStats shared_stats;
  std::unique_ptr<const CoverageSchedule> schedule;
  const bool analytic = config.constellation == nullptr;
  // The campaign-wide pass phase, hoisted so the arrival pre-screen below
  // classifies against the same draw the schedule is built from.
  const Duration phase =
      analytic ? phase_rng.uniform(Duration::zero(),
                                   config.geometry.tr(config.k))
               : Duration::zero();
  if (shared_cache != nullptr) {
    schedule = std::make_unique<GeometricSchedule>(*shared_cache,
                                                   config.target,
                                                   &shared_stats);
  } else if (config.constellation != nullptr) {
    VisibilityCache::Options vopt;
    vopt.window_quantum = campaign_visibility_quantum(config);
    vis_cache.emplace(*config.constellation, config.earth_rotation, vopt);
    schedule =
        std::make_unique<GeometricSchedule>(*vis_cache, config.target);
  } else {
    schedule = std::make_unique<AnalyticSchedule>(config.geometry, config.k,
                                                  phase);
  }

  ComputeCalendar calendar;
  ComputeCalendar* calendar_ptr =
      config.compute_contention ? &calendar : nullptr;

  // Draw the arrival process and arm every episode up front (each only
  // schedules its own detection event).
  std::vector<std::unique_ptr<Rng>> episode_rngs;
  std::vector<std::unique_ptr<TargetEpisode>> episodes;
  TimePoint t = TimePoint::origin() + Duration::minutes(60);
  const TimePoint end = TimePoint::origin() + config.horizon;
  int target_id = 0;
  // The arrivals span brackets the Poisson draw + arm loop; items = the
  // signals admitted. enter/exit instead of ScopedSpan keeps the later
  // drain/finalize spans siblings, not children.
  if (spans != nullptr) spans->enter("arrivals");
  while (true) {
    t = t + arrivals_rng.exponential(config.signal_arrival_rate);
    if (t >= end) break;
    const Duration duration = duration_law->sample(durations_rng);
    if (analytic && config.batch_episodes &&
        !analytic_signal_detected(config.geometry, config.k, phase, t,
                                  duration, config.protocol.tau)) {
      // Closed-form escape: the scalar path would build the RNG stream and
      // the episode only for arm() to reject it — record the identical
      // kMissed outcome without either. False positives fall through to
      // arm(), which stays the authority.
      out.levels.add(to_int(QosLevel::kMissed));
      ++target_id;
      ++out.signals;
      continue;
    }
    episode_rngs.push_back(std::make_unique<Rng>(
        master.fork(100 + static_cast<std::uint64_t>(target_id))));
    auto episode = std::make_unique<TargetEpisode>(
        target_id, sim, net, *schedule, config.protocol,
        config.opportunity_adaptive, *episode_rngs.back(), calendar_ptr,
        nullptr, trace);
    if (episode->arm(t, duration)) {
      episodes.push_back(std::move(episode));
    } else {
      out.levels.add(to_int(QosLevel::kMissed));  // escaped surveillance
    }
    ++target_id;
    ++out.signals;
  }
  if (spans != nullptr) {
    spans->add_items(out.signals);
    spans->exit();
  }
  // Row capacity for every admitted target: recording during the drain
  // below never grows the ledger (zero steady-state allocations).
  if (want_ledger) out.ledger.reserve(target_id);

  // One handler per satellite routes envelopes to every episode (each
  // filters by target id); likewise for the ground station. Geometric
  // passes can involve any active satellite of the constellation.
  std::vector<SatelliteId> sats;
  if (config.constellation != nullptr) {
    sats = config.constellation->active_satellites();
  } else {
    for (int slot = 0; slot < config.k; ++slot) sats.push_back({0, slot});
  }
  for (const SatelliteId id : sats) {
    net.register_node(Address::sat(id), [&episodes, id](const Envelope& env) {
      for (auto& ep : episodes) ep->handle_satellite_message(id, env);
    });
  }
  net.register_node(Address::ground(), [&episodes](const Envelope& env) {
    const auto* alert = env.payload.get_if<AlertMessage>();
    if (alert == nullptr) return;
    for (auto& ep : episodes) ep->handle_ground_alert(*alert);
  });

  // Fault plan (times relative to the campaign origin) and graceful
  // degradation: finally-dropped coordination requests are offered to
  // every episode for a re-route (each filters by target id). Both stay
  // detached on the default path, keeping it byte-identical.
  const FaultPlan* plan =
      config.fault_plan != nullptr && !config.fault_plan->empty()
          ? config.fault_plan
          : nullptr;
  if (config.protocol.reliable_links || config.protocol.self_healing_links ||
      plan != nullptr) {
    net.set_drop_handler([&episodes](const Envelope& env, DropReason reason) {
      for (auto& ep : episodes) ep->handle_send_failure(env, reason);
    });
  }
  std::optional<FaultInjector> injector;
  if (plan != nullptr) {
    // Campaign clauses anchor at the origin and belong to no single
    // target, so their activations land in the ledger's global row.
    injector.emplace(sim, net, *plan, master.fork(6), trace,
                     /*episode_id=*/-1,
                     want_ledger ? &out.ledger : nullptr);
    injector->arm(TimePoint::origin());
  }

  {
    const ScopedSpan drain_span(spans, "drain");
    sim.run(static_cast<std::uint64_t>(episodes.size() + 1) * 100000);
  }

  const ScopedSpan finalize_span(spans, "finalize");
  for (auto& ep : episodes) {
    ep->finalize();
    const auto& r = ep->result();
    out.levels.add(to_int(r.alert_delivered ? r.level : QosLevel::kMissed));
    if (r.alert_delivered) {
      ++out.delivered;
      if (!r.timely) ++out.untimely;
      out.latency_min.add((r.first_alert_sent - r.detection).to_minutes());
    }
    if (r.alerts_sent > 1) ++out.duplicates;
    if (config.check_invariants) {
      // Exact per-target I7 audit (ISSUE 7): the attribution ledger tracks
      // each target's own drops and retries, so a clean episode is audited
      // as clean even when another target's envelopes dropped. Faults stay
      // campaign-wide — clauses are episode-less (global row), so any
      // activation still excuses every overlapping episode; that is the
      // only remaining conservatism.
      EpisodeResult audited = r;
      const LedgerRow& row = out.ledger.row(ep->target_id());
      audited.telemetry.messages_dropped_loss =
          static_cast<std::uint64_t>(row.drops_loss);
      audited.telemetry.messages_dropped_dead =
          static_cast<std::uint64_t>(row.drops_dead);
      audited.telemetry.messages_dropped_link =
          static_cast<std::uint64_t>(row.drops_link);
      audited.telemetry.retries = static_cast<std::uint64_t>(row.retries);
      audited.telemetry.retries_exhausted =
          static_cast<std::uint64_t>(row.retries_exhausted);
      audited.telemetry.faults_injected = static_cast<std::uint64_t>(
          row.faults + out.ledger.global_row().faults);
      out.invariants.check_episode(ep->target_id(), audited, config.protocol);
    }
  }
  if (config.check_invariants) {
    out.invariants.check_simulator(/*episode_id=*/-1, sim.accounting());
  }
  out.contended = calendar.contended_reservations();
  out.queueing_delay_s = calendar.total_queueing_delay().to_seconds();

  if (want_metrics) {
    MetricsRegistry& m = out.metrics;
    m.add("campaign.replications", 1);
    m.add("campaign.signals", out.signals);
    m.add("alerts.delivered", out.delivered);
    m.add("alerts.untimely", out.untimely);
    m.add("alerts.duplicate_episodes", out.duplicates);
    m.add("compute.contended", out.contended);
    const NetworkStats& net_stats = net.stats();
    m.add("xlink.sent", static_cast<std::int64_t>(net_stats.sent));
    m.add("xlink.delivered", static_cast<std::int64_t>(net_stats.delivered));
    m.add("xlink.dropped_loss",
          static_cast<std::int64_t>(net_stats.dropped_loss));
    m.add("xlink.dropped_dead",
          static_cast<std::int64_t>(net_stats.dropped_dead_sender +
                                    net_stats.dropped_dead_receiver +
                                    net_stats.dropped_unregistered));
    if (config.protocol.reliable_links || plan != nullptr) {
      // Gated like sim.queue.*: the golden metrics files predate these.
      m.add("xlink.dropped_link",
            static_cast<std::int64_t>(net_stats.dropped_link));
      m.add("net.retry.attempts",
            static_cast<std::int64_t>(net_stats.retries));
      m.add("net.retry.exhausted",
            static_cast<std::int64_t>(net_stats.retries_exhausted));
      m.add("net.fault.injected",
            static_cast<std::int64_t>(
                injector ? injector->stats().activations : 0));
    }
    if (config.protocol.self_healing_links) {
      // Gated separately: the health estimator is opt-in, and the golden
      // metrics files (including reliable-mode ones) predate these keys.
      m.add("net.health.demoted",
            static_cast<std::int64_t>(net_stats.links_demoted));
      m.add("net.health.restored",
            static_cast<std::int64_t>(net_stats.links_restored));
      m.add("net.health.probes",
            static_cast<std::int64_t>(net_stats.link_probes));
      m.add("net.health.probations",
            static_cast<std::int64_t>(net_stats.link_probations));
      m.add("net.health.reroutes",
            static_cast<std::int64_t>(net_stats.reroutes));
    }
    m.add("sim.events", static_cast<std::int64_t>(sim.processed_count()));
    m.observe("sim.peak_pending",
              static_cast<double>(sim.peak_pending_count()));
    if (config.queue_metrics) {
      const QueueStats& qs = sim.queue_stats();
      m.add("sim.queue.runs_created",
            static_cast<std::int64_t>(qs.runs_created));
      m.add("sim.queue.run_merges",
            static_cast<std::int64_t>(qs.run_merges));
      m.add("sim.queue.tombstones_purged",
            static_cast<std::int64_t>(qs.tombstones_purged));
      m.observe("sim.queue.max_run_length",
                static_cast<double>(qs.max_run_length));
    }
    if (shared_cache != nullptr || vis_cache) {
      const VisibilityCacheStats& vs =
          shared_cache != nullptr ? shared_stats : vis_cache->stats();
      m.add("visibility.pass_queries",
            static_cast<std::int64_t>(vs.pass_queries));
      m.add("visibility.pass_hits",
            static_cast<std::int64_t>(vs.pass_hits));
      if (vis_cache) {
        m.add("visibility.cache_entries",
              static_cast<std::int64_t>(vis_cache->entry_count()));
      }
    }
    m.observe("compute.queueing_delay_s", out.queueing_delay_s);
    for (auto& ep : episodes) {
      const auto& r = ep->result();
      if (r.alert_delivered) {
        m.observe("alerts.latency_min",
                  (r.first_alert_sent - r.detection).to_minutes());
      }
      if (r.detected) {
        m.observe("chain.length", static_cast<double>(r.chain_length));
      }
    }
  }
  return out;
}

}  // namespace

CampaignResult run_campaign(const CampaignConfig& config) {
  OAQ_REQUIRE(config.k > 0, "need at least one satellite");
  OAQ_REQUIRE(config.horizon > Duration::zero(), "horizon must be positive");
  OAQ_REQUIRE(config.signal_arrival_rate > Rate::zero(),
              "arrival rate must be positive");
  OAQ_REQUIRE(config.replications > 0, "need at least one replication");

  // One trace shard per replication (a replication's stream depends only
  // on its child seed, so the shard-order export is jobs-independent).
  if (config.trace != nullptr) config.trace->prepare(config.replications);
  const bool want_metrics = config.metrics != nullptr;
  const auto shard_trace = [&config](int shard) {
    return config.trace != nullptr ? config.trace->shard(shard) : nullptr;
  };

  // Span layout mirrors the trace: one arena per replication plus the
  // main arena for calling-thread work (seed/freeze, merge, root).
  if (config.spans != nullptr) config.spans->prepare(config.replications);
  SpanArena* main_spans =
      config.spans != nullptr ? config.spans->main_arena() : nullptr;
  const ScopedSpan root_span(main_spans, "run_campaign");
  const auto shard_spans = [&config](int shard) -> SpanArena* {
    return config.spans != nullptr ? config.spans->shard_arena(shard)
                                   : nullptr;
  };

  // Run-wide shared cache: the horizon window is seeded once on the
  // calling thread and frozen before any replication runs — every
  // replication then reads the same sweep lock-free.
  std::optional<SharedVisibilityCache> shared_cache;
  SeedFreezeHook seed_hook;
  int seed_executors = 0;
  if (config.constellation != nullptr && config.shared_visibility) {
    VisibilityCache::Options vopt;
    vopt.window_quantum = campaign_visibility_quantum(config);
    shared_cache.emplace(*config.constellation, config.earth_rotation, vopt);
    // `vopt` dies with this block but the lambda runs later (inside
    // parallel_reduce), so capture it by value.
    seed_hook.seed = [&shared_cache, &config, vopt, &seed_executors,
                      main_spans] {
      const ScopedSpan span(main_spans, "visibility_seed");
      // Single-target campaigns seed serially (seed_windows degrades to
      // the plain loop); multi-target callers get the pool fan-out.
      seed_executors = shared_cache->seed_windows(
          {config.target}, Duration::zero(), vopt.window_quantum,
          config.jobs);
    };
    seed_hook.freeze = [&shared_cache, main_spans] {
      const ScopedSpan span(main_spans, "visibility_freeze");
      shared_cache->freeze();
    };
  }
  const SharedVisibilityCache* shared_ptr =
      shared_cache ? &*shared_cache : nullptr;

  CampaignAccum total;
  if (config.replications == 1) {
    using Clock = std::chrono::steady_clock;
    const auto t_start = Clock::now();
    if (shared_cache) {
      seed_hook.seed();
      seed_hook.freeze();
    }
    total =
        run_single_campaign(config, Rng(config.seed), shard_trace(0),
                            want_metrics, shared_ptr, shard_spans(0));
    if (config.profile != nullptr) {
      // No fan-out: a one-shard profile keeps the BENCH_JSON shape.
      config.profile->jobs_resolved = 1;
      config.profile->shards_used = 1;
      config.profile->merge_s = 0.0;
      config.profile->shards.assign(1, {});
      config.profile->shards[0].run_s = config.profile->total_s =
          std::chrono::duration<double>(Clock::now() - t_start).count();
    }
  } else {
    // One shard per replication, merged in replication order, so the
    // aggregate is bit-identical for any jobs value. Child seeds are
    // forked from a dedicated stream so they cannot collide with the
    // per-process streams a single run forks from Rng(seed) itself.
    const Rng replication_seeds = Rng(config.seed).fork(5);
    total = parallel_reduce<CampaignAccum>(
        config.replications, config.replications, config.jobs,
        [&](std::int64_t begin, std::int64_t end, int shard) {
          CampaignAccum acc;
          for (std::int64_t r = begin; r < end; ++r) {
            acc.merge(run_single_campaign(
                config, replication_seeds.fork(static_cast<std::uint64_t>(r)),
                shard_trace(shard), want_metrics, shared_ptr,
                shard_spans(shard)));
          }
          return acc;
        },
        [main_spans](CampaignAccum& into, CampaignAccum&& from) {
          // Calling thread in both the inline and pooled paths — the span
          // count (replications - 1) is jobs-independent.
          const ScopedSpan span(main_spans, "merge");
          into.merge(from);
        },
        config.profile, shared_cache ? &seed_hook : nullptr);
  }
  if (shared_cache && want_metrics) {
    // Global cache size, once — not per replication.
    total.metrics.add(
        "visibility.cache_entries",
        static_cast<std::int64_t>(shared_cache->frozen_entries() +
                                  shared_cache->overflow_entries()));
    if (seed_executors > 1) {
      // Only when the seed phase actually fanned out — single-target
      // campaigns (and the golden metrics files) see no new key.
      total.metrics.add("visibility.seed_parallel", seed_executors);
    }
  }
  if (want_metrics && config.check_invariants) {
    total.metrics.add(
        "invariant.violations",
        static_cast<std::int64_t>(total.invariants.violations()));
  }
  if (want_metrics) *config.metrics = std::move(total.metrics);
  if (config.ledger != nullptr) *config.ledger = std::move(total.ledger);

  CampaignResult out;
  out.signals = total.signals;
  out.levels = std::move(total.levels);
  out.delivered = total.delivered;
  out.untimely = total.untimely;
  out.duplicates = total.duplicates;
  out.replications = config.replications;
  out.latency_min = total.latency_min;
  out.mean_latency_min = total.latency_min.mean();
  out.contended_computations = total.contended;
  out.mean_queueing_delay_s =
      total.contended > 0
          ? total.queueing_delay_s / static_cast<double>(total.contended)
          : 0.0;
  out.invariant_violations =
      static_cast<std::int64_t>(total.invariants.violations());
  out.invariant_samples = total.invariants.samples();
  return out;
}

}  // namespace oaq
