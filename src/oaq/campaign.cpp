#include "oaq/campaign.hpp"

#include "common/error.hpp"

namespace oaq {

CampaignResult run_campaign(const CampaignConfig& config) {
  OAQ_REQUIRE(config.k > 0, "need at least one satellite");
  OAQ_REQUIRE(config.horizon > Duration::zero(), "horizon must be positive");
  OAQ_REQUIRE(config.signal_arrival_rate > Rate::zero(),
              "arrival rate must be positive");

  Rng master(config.seed);
  Rng arrivals_rng = master.fork(1);
  Rng durations_rng = master.fork(2);
  Rng net_rng = master.fork(3);
  Rng phase_rng = master.fork(4);

  const std::shared_ptr<const DurationDistribution> duration_law =
      config.duration_distribution
          ? config.duration_distribution
          : std::make_shared<ExponentialDuration>(Rate::per_minute(0.2));

  Simulator sim;
  CrosslinkNetwork::Options net_opt;
  net_opt.min_delay = config.protocol.delta * 0.3;
  net_opt.max_delay = config.protocol.delta;
  net_opt.loss_probability = config.protocol.crosslink_loss_probability;
  net_opt.lossless_to_ground = true;
  CrosslinkNetwork net(sim, net_opt, net_rng);

  // One plane, one pass pattern for the whole campaign; signal arrival
  // times are uniform over the pattern period by Poisson stationarity.
  const AnalyticSchedule schedule(
      config.geometry, config.k,
      phase_rng.uniform(Duration::zero(), config.geometry.tr(config.k)));

  ComputeCalendar calendar;
  ComputeCalendar* calendar_ptr =
      config.compute_contention ? &calendar : nullptr;

  // Draw the arrival process and arm every episode up front (each only
  // schedules its own detection event).
  std::vector<std::unique_ptr<Rng>> episode_rngs;
  std::vector<std::unique_ptr<TargetEpisode>> episodes;
  TimePoint t = TimePoint::origin() + Duration::minutes(60);
  const TimePoint end = TimePoint::origin() + config.horizon;
  int target_id = 0;
  CampaignResult out;
  while (true) {
    t = t + arrivals_rng.exponential(config.signal_arrival_rate);
    if (t >= end) break;
    const Duration duration = duration_law->sample(durations_rng);
    episode_rngs.push_back(std::make_unique<Rng>(
        master.fork(100 + static_cast<std::uint64_t>(target_id))));
    auto episode = std::make_unique<TargetEpisode>(
        target_id, sim, net, schedule, config.protocol,
        config.opportunity_adaptive, *episode_rngs.back(), calendar_ptr,
        nullptr);
    if (episode->arm(t, duration)) {
      episodes.push_back(std::move(episode));
    } else {
      out.levels.add(to_int(QosLevel::kMissed));  // escaped surveillance
    }
    ++target_id;
    ++out.signals;
  }

  // One handler per satellite routes envelopes to every episode (each
  // filters by target id); likewise for the ground station.
  for (int slot = 0; slot < config.k; ++slot) {
    const SatelliteId id{0, slot};
    net.register_node(Address::sat(id), [&episodes, id](const Envelope& env) {
      for (auto& ep : episodes) ep->handle_satellite_message(id, env);
    });
  }
  net.register_node(Address::ground(), [&episodes](const Envelope& env) {
    const auto* alert = std::any_cast<AlertMessage>(&env.payload);
    if (alert == nullptr) return;
    for (auto& ep : episodes) ep->handle_ground_alert(*alert);
  });

  sim.run(static_cast<std::uint64_t>(episodes.size() + 1) * 100000);

  RunningStat latency;
  for (auto& ep : episodes) {
    ep->finalize();
    const auto& r = ep->result();
    out.levels.add(to_int(r.alert_delivered ? r.level : QosLevel::kMissed));
    if (r.alert_delivered) {
      ++out.delivered;
      if (!r.timely) ++out.untimely;
      latency.add((r.first_alert_sent - r.detection).to_minutes());
    }
    if (r.alerts_sent > 1) ++out.duplicates;
  }
  out.mean_latency_min = latency.mean();
  out.contended_computations = calendar.contended_reservations();
  out.mean_queueing_delay_s =
      calendar.contended_reservations() > 0
          ? calendar.total_queueing_delay().to_seconds() /
                calendar.contended_reservations()
          : 0.0;
  return out;
}

}  // namespace oaq
