// Protocol message payloads carried over the crosslink network (§3.2).
#pragma once

#include "common/units.hpp"
#include "oaq/qos.hpp"
#include "orbit/plane.hpp"

namespace oaq {

/// Running summary of the coordinated geolocation computation, passed along
/// the chain inside coordination requests ("this message contains the
/// initial measurements and preliminary result").
struct GeolocationSummary {
  int contributing_passes = 0;       ///< distinct satellites so far
  bool simultaneous = false;         ///< based on simultaneous coverage
  double estimated_error_km = 0.0;   ///< current 1-σ error estimate (TC-1)

  [[nodiscard]] QosLevel level() const {
    return rate_result(contributing_passes, simultaneous);
  }
};

/// S_n asks S_{n+1} to join the coordination (Fig. 3a/3b).
struct CoordinationRequest {
  int target_id = 0;           ///< which signal this coordination concerns
  TimePoint detection_time{};  ///< t0
  int receiver_ordinal = 0;    ///< n+1: position of the receiver in the chain
  GeolocationSummary summary;  ///< state accumulated through S_n
  SatelliteId requester{};
};

/// "Coordination done" notification propagated downstream (Fig. 3c/3d).
struct CoordinationDone {
  int target_id = 0;
  TimePoint detection_time{};
  SatelliteId reporter{};  ///< who delivered the alert
};

/// Alert message sent to the ground station.
struct AlertMessage {
  int target_id = 0;
  TimePoint detection_time{};
  TimePoint sent{};
  GeolocationSummary summary;
  SatelliteId reporter{};
};

}  // namespace oaq
