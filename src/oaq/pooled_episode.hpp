// Pooled DES context for geometric-mode episodes (ISSUE 8 tentpole).
//
// The scalar geometric path of simulate_qos builds a Simulator, a
// CrosslinkNetwork and a TargetEpisode from scratch for every episode.
// At reference scale (7 planes) the construction cost hides in the
// Kepler work; at mega-constellation scale (72×22) the per-episode slab
// growth and handler re-registration dominate — the network's dense
// per-plane tables alone cover 1584 satellites. PooledEpisodeRunner is
// the geometric sibling of BatchEpisodeEngine (DESIGN.md §12): one
// reusable DES context per shard, constructed on the shard's own thread
// (first touch keeps the arena NUMA-local), reset per episode.
//
// Geometric mode has no closed-form escape test — arm() must consult the
// real pass geometry — so there is no SoA prologue here: every episode
// goes through arm(), and a failed arm retires with the scalar's default
// result exactly like the scalar engine's early return.
//
// Determinism: the runner consumes the same per-episode streams the
// scalar path forks (protocol = ep.fork(3), network = .fork(0x6e6574),
// injector = .fork(0x666c74)); handler registration is a superset of the
// scalar per-episode registration (every active satellite instead of the
// episode's horizon), and no protocol message ever targets a satellite
// outside its episode's horizon, so the extra registrations are
// unreachable. The pooled path is byte-identical to the scalar oracle at
// any job count — the golden byte tests pin it.
#pragma once

#include <optional>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "fault/injector.hpp"
#include "net/crosslink.hpp"
#include "oaq/episode.hpp"
#include "oaq/schedule.hpp"
#include "oaq/target_episode.hpp"
#include "sim/simulator.hpp"

namespace oaq {

class FaultPlan;         // src/fault/plan.hpp
class InvariantChecker;  // src/fault/invariants.hpp

/// Per-shard pooled episode runner for schedule-backed (geometric) mode.
/// Construct one per shard — the DES context is single-threaded state —
/// and drive it once per episode in episode order.
class PooledEpisodeRunner {
 public:
  /// `schedule` is the shard's coverage schedule (its pass horizon must
  /// cover every episode window); `satellites` lists every satellite an
  /// episode may touch (the constellation's active set); `plan` is
  /// nullable and an empty plan is treated as none. All referenced
  /// objects must outlive the runner.
  PooledEpisodeRunner(const CoverageSchedule& schedule,
                      const std::vector<SatelliteId>& satellites,
                      const ProtocolConfig& cfg, bool opportunity_adaptive,
                      const FaultPlan* plan);

  PooledEpisodeRunner(const PooledEpisodeRunner&) = delete;
  PooledEpisodeRunner& operator=(const PooledEpisodeRunner&) = delete;

  /// Run episode `e` with the scalar path's inputs: `protocol_rng` is
  /// ep.fork(3), `start` the jittered signal start, `duration` the
  /// sampled signal duration. `trace` / `invariants` are nullable. The
  /// returned reference is valid until the next run_episode call.
  const EpisodeResult& run_episode(std::int64_t e, const Rng& protocol_rng,
                                   TimePoint start, Duration duration,
                                   ShardTraceBuffer* trace,
                                   InvariantChecker* invariants);

 private:
  ProtocolConfig cfg_;
  bool oaq_;
  const FaultPlan* plan_;  ///< normalized: null when absent or empty

  // Reusable DES context — constructed once, reset per episode.
  Simulator sim_;
  /// The protocol stream of the episode currently running; TargetEpisode
  /// holds a pointer to it across reset_for calls.
  Rng protocol_rng_;
  CrosslinkNetwork net_;
  std::set<SatelliteId> no_known_failed_;
  TargetEpisode episode_;
  std::optional<FaultInjector> injector_;
  /// Reusable stochastic-clause expander — repeated arms allocate nothing.
  FaultProcessExpander expander_;

  /// Reused copy target (participants capacity survives, so steady-state
  /// episodes retire without allocating).
  EpisodeResult result_buf_;
};

}  // namespace oaq
