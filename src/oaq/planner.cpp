#include "oaq/planner.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace oaq {

OpportunityPlanner::OpportunityPlanner(const CoverageSchedule& schedule,
                                       ProtocolConfig config)
    : schedule_(&schedule), config_(config) {
  OAQ_REQUIRE(config.tau > Duration::zero(), "deadline must be positive");
}

std::optional<TimePoint> OpportunityPlanner::next_detection_opportunity(
    TimePoint from, Duration horizon) const {
  OAQ_REQUIRE(horizon > Duration::zero(), "horizon must be positive");
  const Duration f = from.since_origin();
  const auto passes = schedule_->passes(f - Duration::minutes(20),
                                        f + horizon);
  for (const auto& p : passes) {
    if (p.end <= f) continue;
    return TimePoint::at(std::max(p.start, f));
  }
  return std::nullopt;
}

OpportunityPlan OpportunityPlanner::plan(TimePoint t0) const {
  OpportunityPlan out;
  out.detection = t0;
  out.deadline = t0 + config_.tau;

  const Duration d0 = t0.since_origin();
  const auto passes = schedule_->passes(d0 - Duration::minutes(20),
                                        out.deadline.since_origin() +
                                            Duration::minutes(20));
  // The detector: a pass covering t0.
  const Pass* detector = nullptr;
  int covering = 0;
  for (const auto& p : passes) {
    if (p.start <= d0 && d0 < p.end) {
      if (detector == nullptr) detector = &p;
      ++covering;
    }
  }
  OAQ_REQUIRE(detector != nullptr,
              "no coverage at the requested detection instant");

  const AccuracyModel& acc = config_.accuracy;
  out.chain.push_back({detector->satellite, 1, d0,
                       covering >= 2 ? acc.simultaneous_error_km()
                                     : acc.sequential_error_km(1)});

  // Simultaneous opportunity within the deadline?
  if (covering >= 2) {
    out.simultaneous_at = d0;
  } else {
    const auto windows = overlap_windows(passes, d0,
                                         out.deadline.since_origin());
    for (const auto& w : windows) {
      if (w.start >= d0) {
        out.simultaneous_at = w.start;
        break;
      }
    }
  }

  // Feasible sequential chain: the same margin test the engine applies —
  // S_{n+1} is reachable iff arrival + Tg + n·δ < t0 + τ.
  Duration cursor = detector->start;
  int ordinal = 1;
  while (true) {
    const Pass* next = nullptr;
    for (const auto& p : passes) {
      if (p.start > cursor) {
        next = &p;
        break;
      }
    }
    if (next == nullptr || next->satellite == out.chain.back().satellite) {
      break;
    }
    const TimePoint completion_bound =
        TimePoint::at(next->start) + config_.tg +
        static_cast<double>(ordinal) * config_.delta;
    if (completion_bound >= out.deadline) break;
    ++ordinal;
    out.chain.push_back({next->satellite, ordinal, next->start,
                         acc.sequential_error_km(ordinal)});
    cursor = next->start;
  }

  // Best attainable level and error for a persistent signal.
  if (out.simultaneous_at) {
    out.best_achievable = QosLevel::kSimultaneousDual;
    out.best_error_km = acc.simultaneous_error_km();
  } else if (out.chain.size() >= 2) {
    out.best_achievable = QosLevel::kSequentialDual;
    out.best_error_km =
        acc.sequential_error_km(static_cast<int>(out.chain.size()));
  } else {
    out.best_achievable = QosLevel::kSingle;
    out.best_error_km = acc.sequential_error_km(1);
  }
  return out;
}

}  // namespace oaq
