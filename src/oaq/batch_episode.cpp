#include "oaq/batch_episode.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/error.hpp"
#include "fault/invariants.hpp"
#include "fault/plan.hpp"

namespace oaq {
namespace {

/// The network options EpisodeEngine::run derives from the protocol
/// configuration — kept in lockstep (the batched context must be
/// indistinguishable from a per-episode network).
CrosslinkNetwork::Options net_options(const ProtocolConfig& cfg) {
  CrosslinkNetwork::Options opt;
  opt.min_delay = cfg.delta * 0.3;
  opt.max_delay = cfg.delta;
  opt.loss_probability = cfg.crosslink_loss_probability;
  opt.lossless_to_ground = true;
  opt.reliable = cfg.reliable_links;
  opt.retry_limit = cfg.link_retry_limit;
  opt.backoff_base = cfg.link_backoff_base;
  if (cfg.self_healing_links) {
    opt.health.enabled = true;
    opt.health.alpha = cfg.link_health_alpha;
    opt.health.demote_below = cfg.link_demote_below;
    opt.health.restore_above = cfg.link_restore_above;
    opt.health.probation = cfg.link_probation;
    opt.health.probation_backoff = cfg.link_probation_backoff;
    opt.health.probation_cap = cfg.tau;  // τ-feasibility cap
  }
  return opt;
}

}  // namespace

bool analytic_signal_detected(const PlaneGeometry& geometry, int k,
                              Duration phase, TimePoint signal_start,
                              Duration signal_duration, Duration tau) {
  const Duration sig_start = signal_start.since_origin();
  const Duration sig_end = sig_start + signal_duration;
  // The exact pass horizon TargetEpisode::arm() queries.
  const Duration from = sig_start - Duration::minutes(20);
  const Duration to = sig_start +
                      std::min(signal_duration, Duration::minutes(30)) + tau +
                      Duration::minutes(60);
  const Duration tr = geometry.tr(k);
  const Duration tc = geometry.tc();
  // Same enumeration — and the same floating-point expressions — as
  // AnalyticSchedule::passes_into, without materializing the pass list.
  const double from_c = (from - tc / 2.0 - phase) / tr;
  const double to_c = (to + tc / 2.0 - phase) / tr;
  for (long j = static_cast<long>(std::floor(from_c));
       j <= static_cast<long>(std::ceil(to_c)); ++j) {
    const Duration center = phase + tr * static_cast<double>(j);
    const Duration start = center - tc / 2.0;
    const Duration end = center + tc / 2.0;
    if (end < from || start > to) continue;
    // Passes arrive in ascending start order, so arm()'s two scans (any
    // covering pass, else the first pass at/after the signal start)
    // collapse into one: a pass covering the signal start decides armed;
    // past the signal start, the first surviving pass decides by
    // aliveness — later passes can neither cover nor come earlier.
    if (start <= sig_start && sig_start < end) return true;
    if (start >= sig_start) return start < sig_end;
  }
  return false;
}

BatchEpisodeEngine::LaneContext::LaneContext(
    Simulator& sim, const PlaneGeometry& geometry, int k,
    const ProtocolConfig& cfg, bool opportunity_adaptive,
    const std::set<SatelliteId>& known_failed, bool want_drop_handler)
    : schedule(geometry, k, Duration::zero()),
      net(sim, net_options(cfg), Rng(0)),  // re-seeded per lane by reset()
      episode(/*target_id=*/0, sim, net, schedule, cfg, opportunity_adaptive,
              protocol_rng, /*calendar=*/nullptr, &known_failed,
              /*trace=*/nullptr) {
  // Handlers are registered once for the whole plane and survive every
  // reset: an episode's horizon satellites are always a subset of the k
  // slots, and no protocol message ever targets a satellite outside its
  // episode's horizon, so the extra registrations are unreachable — the
  // delivered/dropped accounting matches per-episode registration exactly.
  for (int slot = 0; slot < k; ++slot) {
    const SatelliteId id{0, slot};
    net.register_node(Address::sat(id), [this, id](const Envelope& env) {
      episode.handle_satellite_message(id, env);
    });
  }
  net.register_node(Address::ground(), [this](const Envelope& env) {
    if (const auto* alert = env.payload.get_if<AlertMessage>()) {
      episode.handle_ground_alert(*alert);
    }
  });
  // Same gate as the scalar engine: attached only when links can fail for
  // good, so the default path's drop accounting stays identical.
  if (want_drop_handler) {
    net.set_drop_handler([this](const Envelope& env, DropReason reason) {
      episode.handle_send_failure(env, reason);
    });
  }
}

BatchEpisodeEngine::BatchEpisodeEngine(PlaneGeometry geometry, int k,
                                       const ProtocolConfig& cfg,
                                       bool opportunity_adaptive,
                                       const DurationDistribution& duration_law,
                                       Rng episode_rng, TimePoint signal_start,
                                       const FaultPlan* plan,
                                       int interleave_width)
    : geometry_(geometry),
      k_(k),
      cfg_(cfg),
      oaq_(opportunity_adaptive),
      duration_law_(&duration_law),
      episode_rng_(episode_rng),
      signal_start_(signal_start),
      plan_(plan != nullptr && !plan->empty() ? plan : nullptr),
      width_(interleave_width == 0 ? kEpisodeBatchWidth : interleave_width) {
  OAQ_REQUIRE(k > 0, "need at least one satellite");
  OAQ_REQUIRE(cfg.tau > Duration::zero(), "deadline must be positive");
  OAQ_REQUIRE(interleave_width >= 0 && interleave_width <= kEpisodeBatchWidth,
              "interleave width must be in [0, kEpisodeBatchWidth]");
  sim_.reserve_episode_tags(static_cast<std::size_t>(width_));
  const bool want_drop =
      cfg_.reliable_links || cfg_.self_healing_links || plan_ != nullptr;
  contexts_.reserve(static_cast<std::size_t>(width_));
  for (int j = 0; j < width_; ++j) {
    contexts_.push_back(std::make_unique<LaneContext>(
        sim_, geometry_, k_, cfg_, oaq_, no_known_failed_, want_drop));
  }
  block_staging_.reserve(kEpisodeBatchWidth);
  for (int i = 0; i < kEpisodeBatchWidth; ++i) {
    block_staging_.emplace_back(ShardTraceBuffer::kUnbounded);
  }
}

bool BatchEpisodeEngine::lane_detects(Duration phase, Duration duration) const {
  return analytic_signal_detected(geometry_, k_, phase, signal_start_,
                                  duration, cfg_.tau);
}

void BatchEpisodeEngine::run_des_lane(std::int64_t e, Duration phase,
                                      Duration duration,
                                      ShardTraceBuffer* trace,
                                      InvariantChecker* invariants,
                                      const ResultSink& sink) {
  // The same stream layout as the scalar loop: protocol noise from
  // ep.fork(3), network delays/losses from its 0x6e6574 fork, injector
  // draws from its 0x666c74 fork. fork() is const, so the derivation
  // order is irrelevant — only the draw order during the run matters,
  // and that is the (identical) DES event order.
  LaneContext& ctx = *contexts_[0];
  const Rng ep = episode_rng_.fork(static_cast<std::uint64_t>(e));
  ctx.protocol_rng = ep.fork(3);
  sim_.reset();
  ctx.net.reset(ctx.protocol_rng.fork(0x6e6574));
  ctx.net.set_trace(trace, e);
  ctx.net.set_ledger(ledger_);
  ctx.schedule = AnalyticSchedule(geometry_, k_, phase);
  ctx.episode.reset_for(static_cast<int>(e), ctx.protocol_rng, trace);
  ctx.injector.reset();

  if (!ctx.episode.arm(signal_start_, duration)) {
    // The closed-form classifier is false-positive-safe: arm() is still
    // the authority, and a rejected lane retires with the scalar's
    // default result having touched nothing observable.
    sink(e, ctx.episode.result());
    return;
  }
  if (plan_ != nullptr) {
    ctx.injector.emplace(sim_, ctx.net, *plan_, ctx.protocol_rng.fork(0x666c74),
                         trace, e, ledger_, &ctx.expander);
    ctx.injector->arm(signal_start_);
  }

  sim_.run(200000);
  ctx.episode.finalize();

  // Copy-assign into the reused buffer so the participants capacity
  // survives — steady-state lanes retire without allocating.
  result_buf_ = ctx.episode.result();
  const NetworkStats& net_stats = ctx.net.stats();
  result_buf_.telemetry.messages_sent = net_stats.sent;
  result_buf_.telemetry.messages_delivered = net_stats.delivered;
  result_buf_.telemetry.messages_dropped_loss = net_stats.dropped_loss;
  result_buf_.telemetry.messages_dropped_dead =
      net_stats.dropped_dead_sender + net_stats.dropped_dead_receiver +
      net_stats.dropped_unregistered;
  result_buf_.telemetry.messages_dropped_link = net_stats.dropped_link;
  result_buf_.telemetry.retries = net_stats.retries;
  result_buf_.telemetry.retries_exhausted = net_stats.retries_exhausted;
  result_buf_.telemetry.links_demoted = net_stats.links_demoted;
  result_buf_.telemetry.links_restored = net_stats.links_restored;
  result_buf_.telemetry.links_demoted_end =
      static_cast<std::uint64_t>(ctx.net.demoted_link_count());
  result_buf_.telemetry.link_probes = net_stats.link_probes;
  result_buf_.telemetry.link_probations = net_stats.link_probations;
  result_buf_.telemetry.degradation_active_end =
      ctx.net.degradation_active() ? 1 : 0;
  if (ctx.injector) {
    result_buf_.telemetry.faults_injected = ctx.injector->stats().activations;
    result_buf_.telemetry.lifecycle_deaths =
        ctx.injector->stats().lifecycle_deaths;
    result_buf_.telemetry.lifecycle_spares =
        ctx.injector->stats().lifecycle_spares;
  }
  result_buf_.telemetry.sim_events = sim_.processed_count();
  result_buf_.telemetry.sim_peak_pending = sim_.peak_pending_count();
  const QueueStats& qs = sim_.queue_stats();
  result_buf_.telemetry.sim_runs_created = qs.runs_created;
  result_buf_.telemetry.sim_run_merges = qs.run_merges;
  result_buf_.telemetry.sim_tombstones_purged = qs.tombstones_purged;
  result_buf_.telemetry.sim_max_run_length = qs.max_run_length;

  if (invariants != nullptr) {
    invariants->check_episode(e, result_buf_, cfg_);
    invariants->check_simulator(e, sim_.accounting());
  }
  sink(e, result_buf_);
}

void BatchEpisodeEngine::run_block_interleaved(std::int64_t b, int n,
                                               ShardTraceBuffer* trace,
                                               InvariantChecker* invariants,
                                               const ResultSink& sink) {
  int armed_idx[kEpisodeBatchWidth];
  int armed_n = 0;
  for (int i = 0; i < n; ++i) {
    lane_fate_[i] = LaneFate::kEscaped;
    if (lane_armed_[i]) armed_idx[armed_n++] = i;
  }
  for (int g0 = 0; g0 < armed_n; g0 += width_) {
    const int gn = std::min(width_, armed_n - g0);
    sim_.reset();
    // Arm every lane of the group at the clock origin — exactly where the
    // scalar path arms each episode (no event has fired yet, so now() is
    // the origin for all of them). Group slot j is the lane's episode tag:
    // everything its cascade schedules inherits it.
    for (int j = 0; j < gn; ++j) {
      const int i = armed_idx[g0 + j];
      const std::int64_t e = b + i;
      LaneContext& ctx = *contexts_[static_cast<std::size_t>(j)];
      ShardTraceBuffer* lane_trace =
          trace != nullptr ? &block_staging_[static_cast<std::size_t>(i)]
                           : nullptr;
      const Rng ep = episode_rng_.fork(static_cast<std::uint64_t>(e));
      ctx.protocol_rng = ep.fork(3);
      sim_.set_episode_tag(static_cast<std::uint16_t>(j));
      ctx.net.reset(ctx.protocol_rng.fork(0x6e6574));
      ctx.net.set_trace(lane_trace, e);
      ctx.net.set_ledger(ledger_);
      ctx.schedule = AnalyticSchedule(geometry_, k_, lane_phase_[i]);
      ctx.episode.reset_for(static_cast<int>(e), ctx.protocol_rng, lane_trace);
      ctx.injector.reset();
      if (!ctx.episode.arm(signal_start_, lane_duration_[i])) {
        // Classifier false positive: arm() scheduled nothing (the width-1
        // path relies on the same fact — reset() right after would throw
        // otherwise), so the group timeline is untouched. Snapshot the
        // scalar's default result now, before the context is reused.
        block_result_[static_cast<std::size_t>(i)] = ctx.episode.result();
        lane_fate_[i] = LaneFate::kRejected;
        continue;
      }
      lane_fate_[i] = LaneFate::kDrained;
      if (plan_ != nullptr) {
        ctx.injector.emplace(sim_, ctx.net, *plan_,
                             ctx.protocol_rng.fork(0x666c74), lane_trace, e,
                             ledger_, &ctx.expander);
        ctx.injector->arm(signal_start_);
      }
    }
    // One merged timeline: the kernel pops (time, tag, seq), so each lane
    // observes exactly its dedicated-simulator event order. The safety
    // valve scales with the group so no lane's budget shrinks.
    sim_.run(200000ull * static_cast<std::uint64_t>(gn));
    // Find the group's last drained lane: the merged queue's maintenance
    // counters are a property of the whole group timeline, so the group
    // total is attributed to that lane (zeros elsewhere) — a deterministic
    // rule that keeps shard sums exact (DESIGN.md §15).
    int last_drained = -1;
    for (int j = 0; j < gn; ++j) {
      if (lane_fate_[armed_idx[g0 + j]] == LaneFate::kDrained) last_drained = j;
    }
    // Retire the group before the next group resets the simulator (the
    // reset clears per-tag accounting): finalize, snapshot result +
    // telemetry, audit. Group slots ascend in episode order, so invariant
    // violations are still recorded in increasing episode order.
    for (int j = 0; j < gn; ++j) {
      const int i = armed_idx[g0 + j];
      if (lane_fate_[i] != LaneFate::kDrained) continue;
      const std::int64_t e = b + i;
      LaneContext& ctx = *contexts_[static_cast<std::size_t>(j)];
      ctx.episode.finalize();
      EpisodeResult& out = block_result_[static_cast<std::size_t>(i)];
      out = ctx.episode.result();
      const NetworkStats& net_stats = ctx.net.stats();
      out.telemetry.messages_sent = net_stats.sent;
      out.telemetry.messages_delivered = net_stats.delivered;
      out.telemetry.messages_dropped_loss = net_stats.dropped_loss;
      out.telemetry.messages_dropped_dead =
          net_stats.dropped_dead_sender + net_stats.dropped_dead_receiver +
          net_stats.dropped_unregistered;
      out.telemetry.messages_dropped_link = net_stats.dropped_link;
      out.telemetry.retries = net_stats.retries;
      out.telemetry.retries_exhausted = net_stats.retries_exhausted;
      out.telemetry.links_demoted = net_stats.links_demoted;
      out.telemetry.links_restored = net_stats.links_restored;
      out.telemetry.links_demoted_end =
          static_cast<std::uint64_t>(ctx.net.demoted_link_count());
      out.telemetry.link_probes = net_stats.link_probes;
      out.telemetry.link_probations = net_stats.link_probations;
      out.telemetry.degradation_active_end =
          ctx.net.degradation_active() ? 1 : 0;
      if (ctx.injector) {
        out.telemetry.faults_injected = ctx.injector->stats().activations;
        out.telemetry.lifecycle_deaths = ctx.injector->stats().lifecycle_deaths;
        out.telemetry.lifecycle_spares = ctx.injector->stats().lifecycle_spares;
      }
      const SimAccounting acct =
          sim_.episode_accounting(static_cast<std::uint16_t>(j));
      out.telemetry.sim_events = acct.processed;
      out.telemetry.sim_peak_pending =
          sim_.episode_peak_pending(static_cast<std::uint16_t>(j));
      if (j == last_drained) {
        const QueueStats& qs = sim_.queue_stats();
        out.telemetry.sim_runs_created = qs.runs_created;
        out.telemetry.sim_run_merges = qs.run_merges;
        out.telemetry.sim_tombstones_purged = qs.tombstones_purged;
        out.telemetry.sim_max_run_length = qs.max_run_length;
      } else {
        out.telemetry.sim_runs_created = 0;
        out.telemetry.sim_run_merges = 0;
        out.telemetry.sim_tombstones_purged = 0;
        out.telemetry.sim_max_run_length = 0;
      }
      if (invariants != nullptr) {
        invariants->check_episode(e, out, cfg_);
        invariants->check_simulator(e, acct);
      }
    }
  }
  // Block retirement in strict episode order: each lane's staged trace
  // events replay into the shard ring, then its result sinks — the same
  // per-stream byte sequences the sequential drain produces.
  for (int i = 0; i < n; ++i) {
    const std::int64_t e = b + i;
    if (trace != nullptr) {
      ShardTraceBuffer& staged = block_staging_[static_cast<std::size_t>(i)];
      if (staged.recorded() != 0) staged.drain_into(*trace);
    }
    sink(e, lane_fate_[i] == LaneFate::kEscaped
                ? escaped_result_
                : block_result_[static_cast<std::size_t>(i)]);
  }
}

void BatchEpisodeEngine::run(std::int64_t begin, std::int64_t end,
                             ShardTraceBuffer* trace,
                             InvariantChecker* invariants,
                             const ResultSink& sink, SpanArena* spans,
                             EpisodeLedger* ledger) {
  OAQ_REQUIRE(begin <= end, "episode range must be nondecreasing");
  ledger_ = ledger;
  const Duration tr = geometry_.tr(k_);
  // Block spans are recorded retroactively with shared boundary
  // timestamps: one clock read ends a block's "drain" AND starts the next
  // block's "prologue", and the mid read splits the two — two reads per
  // block instead of four, which is what keeps the profiler inside its
  // <= 5% overhead gate (bench/span_overhead). Per-lane spans would cost
  // two reads per episode; block granularity loses nothing because the
  // export aggregates by call path anyway.
  auto t_block = spans != nullptr ? std::chrono::steady_clock::now()
                                  : std::chrono::steady_clock::time_point{};
  for (std::int64_t b = begin; b < end; b += kEpisodeBatchWidth) {
    const int n =
        static_cast<int>(std::min<std::int64_t>(kEpisodeBatchWidth, end - b));
    // SoA prologue: sample every lane's phase and duration from the same
    // per-index forks the scalar loop draws, then classify closed-form.
    int armed = 0;
    for (int i = 0; i < n; ++i) {
      const Rng ep = episode_rng_.fork(static_cast<std::uint64_t>(b + i));
      Rng phase_rng = ep.fork(1);
      Rng duration_rng = ep.fork(2);
      lane_phase_[i] = phase_rng.uniform(Duration::zero(), tr);
      lane_duration_[i] = duration_law_->sample(duration_rng);
      lane_armed_[i] = lane_detects(lane_phase_[i], lane_duration_[i]);
      armed += lane_armed_[i] ? 1 : 0;
    }
    if (spans != nullptr) {
      const auto t_mid = std::chrono::steady_clock::now();
      spans->enter_at("prologue", t_block);
      spans->add_items(n);
      spans->exit_at(t_mid);
      t_block = t_mid;  // the drain span opens here, closed below
    }
    ++stats_.batches;
    stats_.episodes += static_cast<std::uint64_t>(n);
    stats_.des_lanes += static_cast<std::uint64_t>(armed);
    stats_.escaped += static_cast<std::uint64_t>(n - armed);
    if (n == kEpisodeBatchWidth) ++stats_.occupancy[armed];
    // Retirement in episode order. Width 1 is the sequential drain:
    // escaped lanes compact out immediately (the scalar's failed-arm
    // result is the default), armed lanes drain one at a time through
    // context 0. Wider engines multiplex the armed lanes over one merged
    // timeline and resequence every output stream at block end — either
    // way the trace stream and observation order are identical to the
    // scalar loop.
    if (width_ == 1) {
      for (int i = 0; i < n; ++i) {
        const std::int64_t e = b + i;
        if (!lane_armed_[i]) {
          sink(e, escaped_result_);
        } else {
          run_des_lane(e, lane_phase_[i], lane_duration_[i], trace,
                       invariants, sink);
        }
      }
    } else {
      run_block_interleaved(b, n, trace, invariants, sink);
    }
    if (spans != nullptr) {
      const auto t_end = std::chrono::steady_clock::now();
      spans->enter_at("drain", t_block);
      spans->add_items(armed);
      spans->exit_at(t_end);
      t_block = t_end;
    }
  }
}

}  // namespace oaq
