#include "oaq/batch_episode.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/error.hpp"
#include "fault/invariants.hpp"
#include "fault/plan.hpp"

namespace oaq {
namespace {

/// The network options EpisodeEngine::run derives from the protocol
/// configuration — kept in lockstep (the batched context must be
/// indistinguishable from a per-episode network).
CrosslinkNetwork::Options net_options(const ProtocolConfig& cfg) {
  CrosslinkNetwork::Options opt;
  opt.min_delay = cfg.delta * 0.3;
  opt.max_delay = cfg.delta;
  opt.loss_probability = cfg.crosslink_loss_probability;
  opt.lossless_to_ground = true;
  opt.reliable = cfg.reliable_links;
  opt.retry_limit = cfg.link_retry_limit;
  opt.backoff_base = cfg.link_backoff_base;
  return opt;
}

}  // namespace

bool analytic_signal_detected(const PlaneGeometry& geometry, int k,
                              Duration phase, TimePoint signal_start,
                              Duration signal_duration, Duration tau) {
  const Duration sig_start = signal_start.since_origin();
  const Duration sig_end = sig_start + signal_duration;
  // The exact pass horizon TargetEpisode::arm() queries.
  const Duration from = sig_start - Duration::minutes(20);
  const Duration to = sig_start +
                      std::min(signal_duration, Duration::minutes(30)) + tau +
                      Duration::minutes(60);
  const Duration tr = geometry.tr(k);
  const Duration tc = geometry.tc();
  // Same enumeration — and the same floating-point expressions — as
  // AnalyticSchedule::passes_into, without materializing the pass list.
  const double from_c = (from - tc / 2.0 - phase) / tr;
  const double to_c = (to + tc / 2.0 - phase) / tr;
  for (long j = static_cast<long>(std::floor(from_c));
       j <= static_cast<long>(std::ceil(to_c)); ++j) {
    const Duration center = phase + tr * static_cast<double>(j);
    const Duration start = center - tc / 2.0;
    const Duration end = center + tc / 2.0;
    if (end < from || start > to) continue;
    // Passes arrive in ascending start order, so arm()'s two scans (any
    // covering pass, else the first pass at/after the signal start)
    // collapse into one: a pass covering the signal start decides armed;
    // past the signal start, the first surviving pass decides by
    // aliveness — later passes can neither cover nor come earlier.
    if (start <= sig_start && sig_start < end) return true;
    if (start >= sig_start) return start < sig_end;
  }
  return false;
}

BatchEpisodeEngine::BatchEpisodeEngine(PlaneGeometry geometry, int k,
                                       const ProtocolConfig& cfg,
                                       bool opportunity_adaptive,
                                       const DurationDistribution& duration_law,
                                       Rng episode_rng, TimePoint signal_start,
                                       const FaultPlan* plan)
    : geometry_(geometry),
      k_(k),
      cfg_(cfg),
      oaq_(opportunity_adaptive),
      duration_law_(&duration_law),
      episode_rng_(episode_rng),
      signal_start_(signal_start),
      plan_(plan != nullptr && !plan->empty() ? plan : nullptr),
      schedule_(geometry, k, Duration::zero()),
      net_(sim_, net_options(cfg), Rng(0)),  // re-seeded per lane by reset()
      episode_(/*target_id=*/0, sim_, net_, schedule_, cfg_, oaq_,
               protocol_rng_, /*calendar=*/nullptr, &no_known_failed_,
               /*trace=*/nullptr) {
  OAQ_REQUIRE(k > 0, "need at least one satellite");
  OAQ_REQUIRE(cfg.tau > Duration::zero(), "deadline must be positive");
  // Handlers are registered once for the whole plane and survive every
  // reset: an episode's horizon satellites are always a subset of the k
  // slots, and no protocol message ever targets a satellite outside its
  // episode's horizon, so the extra registrations are unreachable — the
  // delivered/dropped accounting matches per-episode registration exactly.
  for (int slot = 0; slot < k_; ++slot) {
    const SatelliteId id{0, slot};
    net_.register_node(Address::sat(id), [this, id](const Envelope& env) {
      episode_.handle_satellite_message(id, env);
    });
  }
  net_.register_node(Address::ground(), [this](const Envelope& env) {
    if (const auto* alert = env.payload.get_if<AlertMessage>()) {
      episode_.handle_ground_alert(*alert);
    }
  });
  // Same gate as the scalar engine: attached only when links can fail for
  // good, so the default path's drop accounting stays identical.
  if (cfg_.reliable_links || plan_ != nullptr) {
    net_.set_drop_handler([this](const Envelope& env, DropReason reason) {
      episode_.handle_send_failure(env, reason);
    });
  }
}

bool BatchEpisodeEngine::lane_detects(Duration phase, Duration duration) const {
  return analytic_signal_detected(geometry_, k_, phase, signal_start_,
                                  duration, cfg_.tau);
}

void BatchEpisodeEngine::run_des_lane(std::int64_t e, Duration phase,
                                      Duration duration,
                                      ShardTraceBuffer* trace,
                                      InvariantChecker* invariants,
                                      const ResultSink& sink) {
  // The same stream layout as the scalar loop: protocol noise from
  // ep.fork(3), network delays/losses from its 0x6e6574 fork, injector
  // draws from its 0x666c74 fork. fork() is const, so the derivation
  // order is irrelevant — only the draw order during the run matters,
  // and that is the (identical) DES event order.
  const Rng ep = episode_rng_.fork(static_cast<std::uint64_t>(e));
  protocol_rng_ = ep.fork(3);
  sim_.reset();
  net_.reset(protocol_rng_.fork(0x6e6574));
  net_.set_trace(trace, e);
  schedule_ = AnalyticSchedule(geometry_, k_, phase);
  episode_.reset_for(static_cast<int>(e), protocol_rng_, trace);
  injector_.reset();

  if (!episode_.arm(signal_start_, duration)) {
    // The closed-form classifier is false-positive-safe: arm() is still
    // the authority, and a rejected lane retires with the scalar's
    // default result having touched nothing observable.
    sink(e, episode_.result());
    return;
  }
  if (plan_ != nullptr) {
    injector_.emplace(sim_, net_, *plan_, protocol_rng_.fork(0x666c74), trace,
                      e);
    injector_->arm(signal_start_);
  }

  sim_.run(200000);
  episode_.finalize();

  // Copy-assign into the reused buffer so the participants capacity
  // survives — steady-state lanes retire without allocating.
  result_buf_ = episode_.result();
  const NetworkStats& net_stats = net_.stats();
  result_buf_.telemetry.messages_sent = net_stats.sent;
  result_buf_.telemetry.messages_delivered = net_stats.delivered;
  result_buf_.telemetry.messages_dropped_loss = net_stats.dropped_loss;
  result_buf_.telemetry.messages_dropped_dead =
      net_stats.dropped_dead_sender + net_stats.dropped_dead_receiver +
      net_stats.dropped_unregistered;
  result_buf_.telemetry.messages_dropped_link = net_stats.dropped_link;
  result_buf_.telemetry.retries = net_stats.retries;
  result_buf_.telemetry.retries_exhausted = net_stats.retries_exhausted;
  if (injector_) {
    result_buf_.telemetry.faults_injected = injector_->stats().activations;
  }
  result_buf_.telemetry.sim_events = sim_.processed_count();
  result_buf_.telemetry.sim_peak_pending = sim_.peak_pending_count();
  const QueueStats& qs = sim_.queue_stats();
  result_buf_.telemetry.sim_runs_created = qs.runs_created;
  result_buf_.telemetry.sim_run_merges = qs.run_merges;
  result_buf_.telemetry.sim_tombstones_purged = qs.tombstones_purged;
  result_buf_.telemetry.sim_max_run_length = qs.max_run_length;

  if (invariants != nullptr) {
    invariants->check_episode(e, result_buf_, cfg_);
    invariants->check_simulator(e, sim_.accounting());
  }
  sink(e, result_buf_);
}

void BatchEpisodeEngine::run(std::int64_t begin, std::int64_t end,
                             ShardTraceBuffer* trace,
                             InvariantChecker* invariants,
                             const ResultSink& sink, SpanArena* spans) {
  OAQ_REQUIRE(begin <= end, "episode range must be nondecreasing");
  const Duration tr = geometry_.tr(k_);
  // Block spans are recorded retroactively with shared boundary
  // timestamps: one clock read ends a block's "drain" AND starts the next
  // block's "prologue", and the mid read splits the two — two reads per
  // block instead of four, which is what keeps the profiler inside its
  // <= 5% overhead gate (bench/span_overhead). Per-lane spans would cost
  // two reads per episode; block granularity loses nothing because the
  // export aggregates by call path anyway.
  auto t_block = spans != nullptr ? std::chrono::steady_clock::now()
                                  : std::chrono::steady_clock::time_point{};
  for (std::int64_t b = begin; b < end; b += kEpisodeBatchWidth) {
    const int n =
        static_cast<int>(std::min<std::int64_t>(kEpisodeBatchWidth, end - b));
    // SoA prologue: sample every lane's phase and duration from the same
    // per-index forks the scalar loop draws, then classify closed-form.
    int armed = 0;
    for (int i = 0; i < n; ++i) {
      const Rng ep = episode_rng_.fork(static_cast<std::uint64_t>(b + i));
      Rng phase_rng = ep.fork(1);
      Rng duration_rng = ep.fork(2);
      lane_phase_[i] = phase_rng.uniform(Duration::zero(), tr);
      lane_duration_[i] = duration_law_->sample(duration_rng);
      lane_armed_[i] = lane_detects(lane_phase_[i], lane_duration_[i]);
      armed += lane_armed_[i] ? 1 : 0;
    }
    if (spans != nullptr) {
      const auto t_mid = std::chrono::steady_clock::now();
      spans->enter_at("prologue", t_block);
      spans->add_items(n);
      spans->exit_at(t_mid);
      t_block = t_mid;  // the drain span opens here, closed below
    }
    ++stats_.batches;
    stats_.episodes += static_cast<std::uint64_t>(n);
    stats_.des_lanes += static_cast<std::uint64_t>(armed);
    stats_.escaped += static_cast<std::uint64_t>(n - armed);
    if (n == kEpisodeBatchWidth) ++stats_.occupancy[armed];
    // Retirement in episode order: escaped lanes compact out immediately
    // (the scalar's failed-arm result is the default), armed lanes drain
    // sequentially through the one reusable DES context — keeping the
    // trace stream and observation order identical to the scalar loop.
    for (int i = 0; i < n; ++i) {
      const std::int64_t e = b + i;
      if (!lane_armed_[i]) {
        sink(e, escaped_result_);
      } else {
        run_des_lane(e, lane_phase_[i], lane_duration_[i], trace,
                     invariants, sink);
      }
    }
    if (spans != nullptr) {
      const auto t_end = std::chrono::steady_clock::now();
      spans->enter_at("drain", t_block);
      spans->add_items(armed);
      spans->exit_at(t_end);
      t_block = t_end;
    }
  }
}

}  // namespace oaq
