// Per-target protocol state machine — the engine behind EpisodeEngine
// (single signal) and MultiTargetEngine (concurrent signals with compute
// contention).
//
// A TargetEpisode owns one signal's protocol lifecycle over a Simulator
// and CrosslinkNetwork it does NOT own; several episodes can share both.
// Messages carry a target id so a satellite participating in multiple
// coordinations can dispatch to the right episode.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "net/crosslink.hpp"
#include "oaq/episode.hpp"
#include "oaq/messages.hpp"
#include "oaq/schedule.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"

namespace oaq {

/// FIFO single-server computation calendar per satellite: concurrent
/// coordinations contend for a satellite's single signal-processing chain.
class ComputeCalendar {
 public:
  /// Reserve the satellite's processor for `work` starting no earlier than
  /// `ready`; returns the completion time. FIFO in reservation order.
  TimePoint schedule(SatelliteId sat, TimePoint ready, Duration work);

  [[nodiscard]] int contended_reservations() const { return contended_; }
  [[nodiscard]] Duration total_queueing_delay() const { return queueing_; }

 private:
  std::map<SatelliteId, TimePoint> free_at_;
  int contended_ = 0;
  Duration queueing_ = Duration::zero();
};

/// One signal's protocol run over shared infrastructure.
class TargetEpisode {
 public:
  /// `calendar` may be null (uncontended computations). `known_failed` may
  /// be null (no membership view). `trace` may be null (tracing disabled —
  /// every recording site is a single branch on the pointer). All must
  /// outlive the episode.
  TargetEpisode(int target_id, Simulator& sim, CrosslinkNetwork& net,
                const CoverageSchedule& schedule, const ProtocolConfig& cfg,
                bool opportunity_adaptive, Rng& rng,
                ComputeCalendar* calendar,
                const std::set<SatelliteId>* known_failed,
                ShardTraceBuffer* trace = nullptr);

  TargetEpisode(const TargetEpisode&) = delete;
  TargetEpisode& operator=(const TargetEpisode&) = delete;

  /// Return the episode to its just-constructed state for the next signal
  /// in a batch, rebinding the per-episode inputs (target id, RNG stream,
  /// trace sink) while keeping every grown buffer — passes, agents,
  /// participants, overlap scratch — so a re-armed episode allocates
  /// nothing in steady state. The infrastructure bindings (simulator,
  /// network, schedule, config, calendar, membership view) are unchanged.
  void reset_for(int target_id, Rng& rng, ShardTraceBuffer* trace);

  /// Locate t0 and schedule the detection event. Returns true when the
  /// signal will be detected (otherwise the episode is already final:
  /// missed).
  bool arm(TimePoint signal_start, Duration signal_duration);

  /// Dispatch a delivered envelope addressed to a satellite participating
  /// in this episode (the owner routes by target id).
  void handle_satellite_message(SatelliteId self, const Envelope& env);

  /// Dispatch an alert delivered to the ground for this target.
  void handle_ground_alert(const AlertMessage& alert);

  /// Final-drop hook (CrosslinkNetwork::DropHandler): when a coordination
  /// request is lost for good — retry budget spent, link down, or the
  /// peer dead — the requester re-routes the chain to the next live
  /// downstream pass, provided the window-of-opportunity bound still
  /// holds. Its wait deadline stays armed, so the rescue guarantee is
  /// untouched when no re-route is possible.
  void handle_send_failure(const Envelope& env, DropReason reason);

  /// Run the end-of-episode resolution audit (call after the simulator
  /// has drained the horizon).
  void finalize();

  [[nodiscard]] int target_id() const { return target_id_; }
  [[nodiscard]] const EpisodeResult& result() const { return result_; }
  /// Satellites appearing in this episode's pass horizon (the owner
  /// registers network handlers for them).
  [[nodiscard]] std::vector<SatelliteId> horizon_satellites() const;

 private:
  struct AgentState {
    int ordinal = 0;
    GeolocationSummary own;
    SatelliteId downstream{};
    bool has_downstream = false;
    bool waiting = false;
    EventId wait_timeout{};
    bool resolved = false;
    /// Pass start of the downstream peer this agent last requested —
    /// where handle_send_failure resumes the pass scan on a re-route.
    Duration last_request_pass_start = Duration::zero();
  };

  [[nodiscard]] bool alive(TimePoint t) const;
  [[nodiscard]] Duration sample_computation();
  /// Completion time of a computation by `sat` requested now (queues on
  /// the shared calendar when present).
  [[nodiscard]] TimePoint computation_done(SatelliteId sat);
  /// Passes covering `t`, written into the reusable covering scratch (the
  /// reference is valid until the next covering() call).
  [[nodiscard]] const std::vector<Pass>& covering(TimePoint t);
  /// This satellite's agent state, inserted default-constructed on first
  /// touch (the flat sorted-vector equivalent of map::operator[]).
  [[nodiscard]] AgentState& agent(SatelliteId id);
  [[nodiscard]] std::optional<Pass> next_pass_after(Duration after) const;
  [[nodiscard]] std::optional<Pass> next_pass_of(SatelliteId sat,
                                                 Duration after) const;
  void send_alert(SatelliteId reporter, const GeolocationSummary& summary);
  void send_done_downstream(SatelliteId from);
  /// Terminate `sat`'s part of the coordination; `cause` names why (one
  /// of the term_* trace events — TC-1/TC-2/TC-3, geometry, window, ...).
  void finish(SatelliteId sat, TraceEventType cause);
  /// Records a protocol event when tracing is enabled (no-op otherwise).
  void trace(TraceEventType type, SatelliteId sat, int peer_slot, int a,
             double v) const;
  [[nodiscard]] bool tc1_holds(const GeolocationSummary& s) const;
  [[nodiscard]] bool tc2_holds(int n) const;
  void after_iteration(SatelliteId sat, Duration my_pass_start);
  void on_wait_timeout(SatelliteId sat);
  void on_done(SatelliteId sat);
  void on_request(SatelliteId self, const CoordinationRequest& req);
  void handle_cannot_compute(SatelliteId self, TimePoint when);
  void on_detection();
  void start_simultaneous(SatelliteId s1, int co_observers);
  void schedule_preliminary_at_deadline(SatelliteId s1);

  int target_id_;
  Simulator* sim_;
  CrosslinkNetwork* net_;
  const CoverageSchedule* schedule_;
  const ProtocolConfig* cfg_;
  bool oaq_;
  Rng* rng_;
  ComputeCalendar* calendar_;
  const std::set<SatelliteId>* known_failed_;
  ShardTraceBuffer* trace_;

  TimePoint sig_start_{};
  TimePoint sig_end_{};
  TimePoint t0_{};
  TimePoint deadline_{};
  std::vector<Pass> passes_;
  /// Agents sorted by satellite id — the map it replaces iterated in key
  /// order, which finalize() relies on. Materialized lazily on first
  /// touch, so only the chain's actual participants (a handful, even at
  /// mega-constellation scale) ever get entries; inserts are cheap and
  /// lookups branch-predictable; capacity survives reset_for().
  std::vector<std::pair<SatelliteId, AgentState>> agents_;
  EpisodeResult result_;
  std::vector<Pass> covering_scratch_;
  std::vector<OverlapEvent> overlap_scratch_;
};

}  // namespace oaq
