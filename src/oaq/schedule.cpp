#include "oaq/schedule.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace oaq {

AnalyticSchedule::AnalyticSchedule(PlaneGeometry geometry, int k,
                                   Duration phase)
    : geometry_(geometry), k_(k), phase_(phase) {
  OAQ_REQUIRE(k > 0, "schedule needs at least one satellite");
}

std::vector<Pass> AnalyticSchedule::passes(Duration from, Duration to) const {
  std::vector<Pass> out;
  passes_into(from, to, out);
  return out;
}

void AnalyticSchedule::passes_into(Duration from, Duration to,
                                   std::vector<Pass>& out) const {
  OAQ_REQUIRE(to > from, "pass window must be nonempty");
  out.clear();
  const Duration tr = geometry_.tr(k_);
  const Duration tc = geometry_.tc();
  // Pass j (j ∈ ℤ) is centered at phase + j·Tr and covers ±Tc/2 around it.
  // Satellite identity: slot (j mod k) descending so that consecutive
  // visitors are consecutive chain members (slot j, j-1, ... mod k).
  const double from_c = (from - tc / 2.0 - phase_) / tr;
  const double to_c = (to + tc / 2.0 - phase_) / tr;
  // Ascending j yields ascending centers, so the output is already sorted
  // by start time.
  for (long j = static_cast<long>(std::floor(from_c));
       j <= static_cast<long>(std::ceil(to_c)); ++j) {
    const Duration center = phase_ + tr * static_cast<double>(j);
    const Duration start = center - tc / 2.0;
    const Duration end = center + tc / 2.0;
    if (end < from || start > to) continue;
    const int slot = static_cast<int>(((-j % k_) + k_) % k_);
    out.push_back({SatelliteId{0, slot}, start, end});
  }
}

GeometricSchedule::GeometricSchedule(const Constellation& constellation,
                                     GeoPoint target, bool earth_rotation)
    : constellation_(&constellation), target_(target),
      earth_rotation_(earth_rotation) {}

GeometricSchedule::GeometricSchedule(VisibilityCache& cache, GeoPoint target)
    : constellation_(cache.constellation()), target_(target),
      earth_rotation_(cache.earth_rotation()), cache_(&cache) {}

GeometricSchedule::GeometricSchedule(const SharedVisibilityCache& cache,
                                     GeoPoint target,
                                     VisibilityCacheStats* stats)
    : constellation_(cache.constellation()), target_(target),
      earth_rotation_(cache.earth_rotation()), shared_cache_(&cache),
      shared_stats_(stats) {}

std::vector<Pass> GeometricSchedule::passes(Duration from, Duration to) const {
  OAQ_REQUIRE(to > from, "pass window must be nonempty");
  if (shared_cache_ != nullptr) {
    return shared_cache_->passes_window(target_, from, to, shared_stats_);
  }
  if (cache_ != nullptr) return cache_->passes_window(target_, from, to);
  const PassPredictor predictor(*constellation_, earth_rotation_);
  // PassPredictor requires a nonnegative horizon start.
  const Duration t0 = std::max(from, Duration::zero());
  if (to <= t0) return {};
  return predictor.passes(target_, t0, to);
}

void GeometricSchedule::passes_into(Duration from, Duration to,
                                    std::vector<Pass>& out) const {
  if (shared_cache_ != nullptr) {
    shared_cache_->passes_window_into(target_, from, to, out, shared_stats_);
    return;
  }
  if (cache_ != nullptr) {
    cache_->passes_window_into(target_, from, to, out);
    return;
  }
  out = passes(from, to);
}

std::optional<Duration> first_overlap_start(const std::vector<Pass>& passes,
                                            Duration from, Duration to,
                                            std::vector<OverlapEvent>& scratch) {
  if (passes.empty() || to <= from) return std::nullopt;
  scratch.clear();
  for (const auto& p : passes) {
    const Duration s = std::max(p.start, from);
    const Duration e = std::min(p.end, to);
    if (e <= s) continue;
    scratch.push_back({s, true});
    scratch.push_back({e, false});
  }
  // Boundary order mirrors multiplicity_timeline exactly: by time, exits
  // before entries at equal times, so segment multiplicities match the
  // materializing sweep bit for bit.
  std::sort(scratch.begin(), scratch.end(),
            [](const OverlapEvent& a, const OverlapEvent& b) {
              if (a.at != b.at) return a.at < b.at;
              return a.enter < b.enter;
            });
  int depth = 0;
  Duration cursor = from;
  const auto qualifies = [&](Duration upto) {
    // overlap_windows keeps segments with multiplicity >= 2 that are not
    // degenerate; merging only ever extends a window's end, so the first
    // kept segment's start is the first window's start.
    return depth >= 2 && upto - cursor > Duration::seconds(1e-6);
  };
  for (const auto& ev : scratch) {
    if (ev.at > cursor) {
      if (qualifies(ev.at)) return cursor;
      cursor = ev.at;
    }
    depth += ev.enter ? 1 : -1;
  }
  if (to > cursor && qualifies(to)) return cursor;
  return std::nullopt;
}

std::vector<CoverageSegment> overlap_windows(const std::vector<Pass>& passes,
                                             Duration from, Duration to) {
  if (passes.empty() || to <= from) return {};
  auto timeline = PassPredictor::multiplicity_timeline(passes, from, to);
  std::vector<CoverageSegment> out;
  for (auto& seg : timeline) {
    if (seg.multiplicity() < 2) continue;
    if (seg.duration() <= Duration::seconds(1e-6)) continue;  // degenerate
    if (!out.empty() && out.back().end == seg.start &&
        seg.multiplicity() >= 2) {
      out.back().end = seg.end;  // merge adjacent ≥2 segments
    } else {
      out.push_back(std::move(seg));
    }
  }
  return out;
}

}  // namespace oaq
