#include "oaq/episode.hpp"

#include <algorithm>
#include <optional>

#include "common/error.hpp"
#include "fault/injector.hpp"
#include "fault/invariants.hpp"
#include "fault/plan.hpp"
#include "oaq/target_episode.hpp"

namespace oaq {

EpisodeEngine::EpisodeEngine(const CoverageSchedule& schedule,
                             ProtocolConfig config, bool opportunity_adaptive)
    : schedule_(&schedule), config_(config), oaq_(opportunity_adaptive) {
  OAQ_REQUIRE(config.tau > Duration::zero(), "deadline must be positive");
  OAQ_REQUIRE(config.delta >= Duration::zero(), "delta must be nonnegative");
  OAQ_REQUIRE(config.tg >= Duration::zero(), "Tg must be nonnegative");
  OAQ_REQUIRE(config.nu > Rate::zero(), "computation rate must be positive");
}

EpisodeResult EpisodeEngine::run(TimePoint signal_start,
                                 Duration signal_duration, Rng& rng,
                                 const std::vector<Fault>& faults,
                                 const std::set<SatelliteId>& known_failed,
                                 ShardTraceBuffer* trace, int episode_id,
                                 const EpisodeFaultHooks* hooks) const {
  OAQ_REQUIRE(signal_duration > Duration::zero(),
              "signal duration must be positive");
  const FaultPlan* plan =
      hooks != nullptr && hooks->plan != nullptr && !hooks->plan->empty()
          ? hooks->plan
          : nullptr;

  Simulator sim;
  CrosslinkNetwork::Options net_opt;
  net_opt.min_delay = config_.delta * 0.3;
  net_opt.max_delay = config_.delta;
  net_opt.loss_probability = config_.crosslink_loss_probability;
  net_opt.lossless_to_ground = true;
  net_opt.reliable = config_.reliable_links;
  net_opt.retry_limit = config_.link_retry_limit;
  net_opt.backoff_base = config_.link_backoff_base;
  if (config_.self_healing_links) {
    net_opt.health.enabled = true;
    net_opt.health.alpha = config_.link_health_alpha;
    net_opt.health.demote_below = config_.link_demote_below;
    net_opt.health.restore_above = config_.link_restore_above;
    net_opt.health.probation = config_.link_probation;
    net_opt.health.probation_backoff = config_.link_probation_backoff;
    // τ-feasibility: escalating probations never push a probe past the
    // alert deadline's useful horizon.
    net_opt.health.probation_cap = config_.tau;
  }
  CrosslinkNetwork net(sim, net_opt, rng.fork(0x6e6574));
  net.set_trace(trace, episode_id);
  if (hooks != nullptr) net.set_ledger(hooks->ledger);

  TargetEpisode episode(episode_id, sim, net, *schedule_, config_, oaq_, rng,
                        /*calendar=*/nullptr, &known_failed, trace);
  if (!episode.arm(signal_start, signal_duration)) {
    // The signal escapes surveillance entirely (paper §2, worst case).
    return episode.result();
  }

  for (const SatelliteId id : episode.horizon_satellites()) {
    net.register_node(Address::sat(id), [&episode, id](const Envelope& env) {
      episode.handle_satellite_message(id, env);
    });
  }
  net.register_node(Address::ground(), [&episode](const Envelope& env) {
    if (const auto* alert = env.payload.get_if<AlertMessage>()) {
      episode.handle_ground_alert(*alert);
    }
  });

  // Graceful degradation: when links may fail for good (retry budgets or
  // an injected plan), a finally-dropped coordination request re-routes to
  // the next live downstream peer. Left detached otherwise so the default
  // path is byte-identical to the pre-fault engine.
  if (config_.reliable_links || config_.self_healing_links ||
      plan != nullptr) {
    net.set_drop_handler([&episode](const Envelope& env, DropReason reason) {
      episode.handle_send_failure(env, reason);
    });
  }

  for (const auto& f : faults) {
    const TimePoint at = std::max(f.at, sim.now());
    sim.schedule_at(at, [&net, sat = f.satellite] {
      net.fail_silent(Address::sat(sat));
    });
  }

  // The injector draws (if a future clause type ever randomizes) from a
  // dedicated const fork, so attaching a plan never perturbs the protocol
  // or network streams above.
  std::optional<FaultInjector> injector;
  if (plan != nullptr) {
    injector.emplace(sim, net, *plan, rng.fork(0x666c74), trace, episode_id,
                     hooks->ledger);
    injector->arm(signal_start);
  }

  sim.run(200000);
  episode.finalize();

  EpisodeResult result = episode.result();
  const NetworkStats& net_stats = net.stats();
  result.telemetry.messages_sent = net_stats.sent;
  result.telemetry.messages_delivered = net_stats.delivered;
  result.telemetry.messages_dropped_loss = net_stats.dropped_loss;
  result.telemetry.messages_dropped_dead = net_stats.dropped_dead_sender +
                                           net_stats.dropped_dead_receiver +
                                           net_stats.dropped_unregistered;
  result.telemetry.messages_dropped_link = net_stats.dropped_link;
  result.telemetry.retries = net_stats.retries;
  result.telemetry.retries_exhausted = net_stats.retries_exhausted;
  result.telemetry.links_demoted = net_stats.links_demoted;
  result.telemetry.links_restored = net_stats.links_restored;
  result.telemetry.links_demoted_end =
      static_cast<std::uint64_t>(net.demoted_link_count());
  result.telemetry.link_probes = net_stats.link_probes;
  result.telemetry.link_probations = net_stats.link_probations;
  result.telemetry.degradation_active_end =
      net.degradation_active() ? 1 : 0;
  if (injector) {
    result.telemetry.faults_injected = injector->stats().activations;
    result.telemetry.lifecycle_deaths = injector->stats().lifecycle_deaths;
    result.telemetry.lifecycle_spares = injector->stats().lifecycle_spares;
  }
  result.telemetry.sim_events = sim.processed_count();
  result.telemetry.sim_peak_pending = sim.peak_pending_count();
  const QueueStats& qs = sim.queue_stats();
  result.telemetry.sim_runs_created = qs.runs_created;
  result.telemetry.sim_run_merges = qs.run_merges;
  result.telemetry.sim_tombstones_purged = qs.tombstones_purged;
  result.telemetry.sim_max_run_length = qs.max_run_length;

  if (hooks != nullptr && hooks->invariants != nullptr) {
    hooks->invariants->check_episode(episode_id, result, config_);
    hooks->invariants->check_simulator(episode_id, sim.accounting());
  }
  return result;
}

}  // namespace oaq
