// The application-oriented QoS spectrum (paper Table 1).
#pragma once

#include <array>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace oaq {

/// QoS level of a delivered geolocation result, rated by the coverage basis
/// of the measurements behind it (Table 1).
enum class QosLevel : int {
  kMissed = 0,            ///< target escaped surveillance
  kSingle = 1,            ///< single-coverage (preliminary) result
  kSequentialDual = 2,    ///< sequential multiple coverage (OAQ only)
  kSimultaneousDual = 3,  ///< simultaneous multiple coverage
};

[[nodiscard]] constexpr int to_int(QosLevel level) {
  return static_cast<int>(level);
}

[[nodiscard]] constexpr std::string_view to_string(QosLevel level) {
  switch (level) {
    case QosLevel::kMissed: return "missed";
    case QosLevel::kSingle: return "single";
    case QosLevel::kSequentialDual: return "sequential-dual";
    case QosLevel::kSimultaneousDual: return "simultaneous-dual";
  }
  return "?";
}

/// Rate a result from how it was obtained: `simultaneous` when two or more
/// satellites co-observed, otherwise by the number of distinct satellites
/// whose passes contributed measurements.
[[nodiscard]] constexpr QosLevel rate_result(int contributing_passes,
                                             bool simultaneous) {
  if (simultaneous) return QosLevel::kSimultaneousDual;
  if (contributing_passes >= 2) return QosLevel::kSequentialDual;
  if (contributing_passes == 1) return QosLevel::kSingle;
  return QosLevel::kMissed;
}

/// Table 1 rows: the levels achievable for a plane's geometric orientation.
[[nodiscard]] inline std::vector<QosLevel> achievable_levels(bool overlapping) {
  if (overlapping) {
    return {QosLevel::kSimultaneousDual, QosLevel::kSingle};
  }
  return {QosLevel::kSequentialDual, QosLevel::kSingle, QosLevel::kMissed};
}

}  // namespace oaq
