#include "oaq/pooled_episode.hpp"

#include "common/error.hpp"
#include "fault/invariants.hpp"
#include "fault/plan.hpp"

namespace oaq {
namespace {

/// The network options EpisodeEngine::run derives from the protocol
/// configuration — kept in lockstep (the pooled context must be
/// indistinguishable from a per-episode network).
CrosslinkNetwork::Options net_options(const ProtocolConfig& cfg) {
  CrosslinkNetwork::Options opt;
  opt.min_delay = cfg.delta * 0.3;
  opt.max_delay = cfg.delta;
  opt.loss_probability = cfg.crosslink_loss_probability;
  opt.lossless_to_ground = true;
  opt.reliable = cfg.reliable_links;
  opt.retry_limit = cfg.link_retry_limit;
  opt.backoff_base = cfg.link_backoff_base;
  if (cfg.self_healing_links) {
    opt.health.enabled = true;
    opt.health.alpha = cfg.link_health_alpha;
    opt.health.demote_below = cfg.link_demote_below;
    opt.health.restore_above = cfg.link_restore_above;
    opt.health.probation = cfg.link_probation;
    opt.health.probation_backoff = cfg.link_probation_backoff;
    opt.health.probation_cap = cfg.tau;  // τ-feasibility cap
  }
  return opt;
}

}  // namespace

PooledEpisodeRunner::PooledEpisodeRunner(
    const CoverageSchedule& schedule,
    const std::vector<SatelliteId>& satellites, const ProtocolConfig& cfg,
    bool opportunity_adaptive, const FaultPlan* plan)
    : cfg_(cfg),
      oaq_(opportunity_adaptive),
      plan_(plan != nullptr && !plan->empty() ? plan : nullptr),
      net_(sim_, net_options(cfg), Rng(0)),  // re-seeded per episode
      episode_(/*target_id=*/0, sim_, net_, schedule, cfg_, oaq_,
               protocol_rng_, /*calendar=*/nullptr, &no_known_failed_,
               /*trace=*/nullptr) {
  OAQ_REQUIRE(!satellites.empty(), "need at least one satellite");
  OAQ_REQUIRE(cfg.tau > Duration::zero(), "deadline must be positive");
  // Handlers are registered once for the whole constellation and survive
  // every reset: an episode's horizon satellites are always a subset of
  // the active set, and no protocol message ever targets a satellite
  // outside its episode's horizon, so the extra registrations are
  // unreachable — the delivered/dropped accounting matches per-episode
  // registration exactly. Registration on the shard's own thread also
  // first-touches the dense per-plane tables, keeping the pooled arena
  // local to the shard.
  for (const SatelliteId id : satellites) {
    net_.register_node(Address::sat(id), [this, id](const Envelope& env) {
      episode_.handle_satellite_message(id, env);
    });
  }
  net_.register_node(Address::ground(), [this](const Envelope& env) {
    if (const auto* alert = env.payload.get_if<AlertMessage>()) {
      episode_.handle_ground_alert(*alert);
    }
  });
  // Same gate as the scalar engine: attached only when links can fail for
  // good, so the default path's drop accounting stays identical.
  if (cfg_.reliable_links || cfg_.self_healing_links || plan_ != nullptr) {
    net_.set_drop_handler([this](const Envelope& env, DropReason reason) {
      episode_.handle_send_failure(env, reason);
    });
  }
}

const EpisodeResult& PooledEpisodeRunner::run_episode(
    std::int64_t e, const Rng& protocol_rng, TimePoint start,
    Duration duration, ShardTraceBuffer* trace, InvariantChecker* invariants) {
  // The same stream layout as the scalar loop: protocol noise from
  // ep.fork(3), network delays/losses from its 0x6e6574 fork, injector
  // draws from its 0x666c74 fork. fork() is const, so the derivation
  // order is irrelevant — only the draw order during the run matters,
  // and that is the (identical) DES event order.
  protocol_rng_ = protocol_rng;
  sim_.reset();
  net_.reset(protocol_rng_.fork(0x6e6574));
  net_.set_trace(trace, e);
  episode_.reset_for(static_cast<int>(e), protocol_rng_, trace);
  injector_.reset();

  if (!episode_.arm(start, duration)) {
    // The signal escapes surveillance entirely — the scalar engine's
    // early return, having touched nothing observable.
    return episode_.result();
  }
  if (plan_ != nullptr) {
    injector_.emplace(sim_, net_, *plan_, protocol_rng_.fork(0x666c74), trace,
                      e, /*ledger=*/nullptr, &expander_);
    // The scalar engine arms at its signal-start argument, which in
    // geometric mode is the episode's jittered start.
    injector_->arm(start);
  }

  sim_.run(200000);
  episode_.finalize();

  // Copy-assign into the reused buffer so the participants capacity
  // survives — steady-state episodes retire without allocating.
  result_buf_ = episode_.result();
  const NetworkStats& net_stats = net_.stats();
  result_buf_.telemetry.messages_sent = net_stats.sent;
  result_buf_.telemetry.messages_delivered = net_stats.delivered;
  result_buf_.telemetry.messages_dropped_loss = net_stats.dropped_loss;
  result_buf_.telemetry.messages_dropped_dead =
      net_stats.dropped_dead_sender + net_stats.dropped_dead_receiver +
      net_stats.dropped_unregistered;
  result_buf_.telemetry.messages_dropped_link = net_stats.dropped_link;
  result_buf_.telemetry.retries = net_stats.retries;
  result_buf_.telemetry.retries_exhausted = net_stats.retries_exhausted;
  result_buf_.telemetry.links_demoted = net_stats.links_demoted;
  result_buf_.telemetry.links_restored = net_stats.links_restored;
  result_buf_.telemetry.links_demoted_end =
      static_cast<std::uint64_t>(net_.demoted_link_count());
  result_buf_.telemetry.link_probes = net_stats.link_probes;
  result_buf_.telemetry.link_probations = net_stats.link_probations;
  result_buf_.telemetry.degradation_active_end =
      net_.degradation_active() ? 1 : 0;
  if (injector_) {
    result_buf_.telemetry.faults_injected = injector_->stats().activations;
    result_buf_.telemetry.lifecycle_deaths = injector_->stats().lifecycle_deaths;
    result_buf_.telemetry.lifecycle_spares = injector_->stats().lifecycle_spares;
  }
  result_buf_.telemetry.sim_events = sim_.processed_count();
  result_buf_.telemetry.sim_peak_pending = sim_.peak_pending_count();
  const QueueStats& qs = sim_.queue_stats();
  result_buf_.telemetry.sim_runs_created = qs.runs_created;
  result_buf_.telemetry.sim_run_merges = qs.run_merges;
  result_buf_.telemetry.sim_tombstones_purged = qs.tombstones_purged;
  result_buf_.telemetry.sim_max_run_length = qs.max_run_length;

  if (invariants != nullptr) {
    invariants->check_episode(e, result_buf_, cfg_);
    invariants->check_simulator(e, sim_.accounting());
  }
  return result_buf_;
}

}  // namespace oaq
