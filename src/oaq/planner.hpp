// Opportunity planner: the "window of opportunity" as a queryable object.
//
// Given a detection instant, the planner derives — deterministically, from
// the same knowledge a satellite has onboard (constellation geometry, τ,
// δ, Tg) — the temporal and spatial extent of the opportunity the OAQ
// protocol will exploit:
//   * whether (and when) simultaneous coverage arrives within τ,
//   * the feasible coordination chain: which peers arrive in time to
//     contribute an iteration (the per-step feasibility test is the same
//     arrival + Tg + n·δ < τ margin the protocol engine uses),
//   * the best QoS level attainable if the signal persists, and the
//     expected accuracy after each step.
// Useful for onboard decision support, mission planning and what-if
// analysis; the planner's predictions are validated against the episode
// engine in tests.
#pragma once

#include <optional>
#include <vector>

#include "geoloc/accuracy.hpp"
#include "oaq/episode.hpp"

namespace oaq {

/// One feasible coordination step.
struct PlannedStep {
  SatelliteId satellite{};
  int ordinal = 0;               ///< position in the chain (1 = detector)
  Duration arrival{};            ///< when its footprint reaches the target
  double expected_error_km = 0.0;  ///< accuracy after this step completes
};

/// The opportunity available from a given detection instant.
struct OpportunityPlan {
  TimePoint detection{};
  TimePoint deadline{};
  /// Set when overlapped footprints arrive within the deadline: the
  /// instant simultaneous coverage begins.
  std::optional<Duration> simultaneous_at;
  /// Feasible chain steps (detector first). Empty only if detection
  /// itself is impossible at this instant.
  std::vector<PlannedStep> chain;
  /// Best level attainable if the signal persists through the window.
  QosLevel best_achievable = QosLevel::kMissed;
  /// Expected error of the best plan (persistent signal).
  double best_error_km = 0.0;

  [[nodiscard]] int max_chain_length() const {
    return static_cast<int>(chain.size());
  }
};

/// Plans opportunities against a coverage schedule.
class OpportunityPlanner {
 public:
  OpportunityPlanner(const CoverageSchedule& schedule, ProtocolConfig config);

  /// The opportunity from a detection at `t0`. Requires the target to be
  /// covered at `t0` (a detection implies coverage).
  [[nodiscard]] OpportunityPlan plan(TimePoint t0) const;

  /// Earliest detection instant at or after `from` (when any footprint
  /// covers the target), or nullopt if none within `horizon`.
  [[nodiscard]] std::optional<TimePoint> next_detection_opportunity(
      TimePoint from, Duration horizon = Duration::minutes(30)) const;

 private:
  const CoverageSchedule* schedule_;
  ProtocolConfig config_;
};

}  // namespace oaq
