// SoA episode batching for the analytic Monte-Carlo path (DESIGN.md §12).
//
// The scalar path of simulate_qos builds a Simulator, a CrosslinkNetwork
// and a TargetEpisode from scratch for every episode — thousands of
// episodes, each paying construction, handler registration, and teardown
// for a protocol run that is often over before it starts (the signal
// escapes surveillance entirely). BatchEpisodeEngine advances a shard's
// episodes in blocks of kEpisodeBatchWidth lanes:
//
//   1. Prologue (SoA): the per-lane phase and signal duration are sampled
//      into structure-of-arrays lanes from the same per-index RNG streams
//      the scalar path forks (episode_rng.fork(e) → fork(1)/fork(2)), and
//      each lane is classified closed-form against the analytic timing
//      diagram: will the signal be detected at all? The classification
//      mirrors TargetEpisode::arm() expression by expression, so it is
//      bit-exact against the scalar decision.
//   2. Escaped lanes retire immediately with a default EpisodeResult — the
//      exact value the scalar engine returns for a failed arm — and never
//      touch the DES.
//   3. Armed lanes execute as ONE interleaved event timeline (DESIGN.md
//      §15): groups of up to `interleave_width` armed lanes are armed up
//      front in one episode-tagged simulator and drained as a merged
//      timeline — per-lane networks, episodes, and RNG streams keep every
//      protocol observable disjoint, and the kernel's (time, tag, seq) key
//      keeps each lane's event order exactly what a dedicated simulator
//      would produce. Width 1 reproduces the PR 6 sequential drain
//      (reset → drain one lane → reset) operation for operation.
//
// Determinism: every random stream is the same fork the scalar path uses
// (ep.fork(3) protocol noise, .fork(0x6e6574) network, .fork(0x666c74)
// injector), DES event order is a pure function of (time, tag, sequence) —
// never of recycled slab slots — and the closed-form escape test is a
// false-positive-safe mirror of arm() (a lane the classifier arms but arm()
// rejects still retires with the scalar's default result). Interleaved
// lanes buffer trace events in per-lane staging rings and snapshot results
// and telemetry at group retirement, then emit everything in strictly
// increasing episode order — so the trace stream, metric observation
// order, ledger rows, and span trees are byte-identical to the scalar
// oracle at any job count and any interleave width.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "common/distribution.hpp"
#include "common/rng.hpp"
#include "fault/injector.hpp"
#include "net/crosslink.hpp"
#include "oaq/episode.hpp"
#include "oaq/schedule.hpp"
#include "oaq/target_episode.hpp"
#include "obs/span.hpp"
#include "sim/simulator.hpp"

namespace oaq {

class FaultPlan;         // src/fault/plan.hpp
class InvariantChecker;  // src/fault/invariants.hpp

/// Closed-form mirror of TargetEpisode::arm()'s detection decision for the
/// analytic schedule: true iff a signal starting at `signal_start` with the
/// given duration is detected under pass phase `phase` — the same horizon,
/// the same pass enumeration, and the same floating-point expressions as
/// arm(), with no pass list materialized. Used by the batch engine's escape
/// prologue and the campaign's arrival pre-screen.
[[nodiscard]] bool analytic_signal_detected(const PlaneGeometry& geometry,
                                            int k, Duration phase,
                                            TimePoint signal_start,
                                            Duration signal_duration,
                                            Duration tau);

/// Lanes advanced per prologue block. Eight keeps the SoA arrays inside a
/// cache line per field and matches the occupancy histogram granularity.
inline constexpr int kEpisodeBatchWidth = 8;

/// Occupancy and throughput counters of one engine's batched run. Pure
/// functions of the episode index range and the configuration, so shard
/// merges are deterministic; exported as the gated sim.batch.* metrics.
struct BatchEpisodeStats {
  std::uint64_t batches = 0;    ///< prologue blocks processed
  std::uint64_t episodes = 0;   ///< total lanes (escaped + drained)
  std::uint64_t escaped = 0;    ///< retired closed-form, DES skipped
  std::uint64_t des_lanes = 0;  ///< lanes drained through the DES context
  /// Histogram of armed lanes per full-width block (index = armed count).
  std::array<std::uint64_t, kEpisodeBatchWidth + 1> occupancy{};

  void merge(const BatchEpisodeStats& other) {
    batches += other.batches;
    episodes += other.episodes;
    escaped += other.escaped;
    des_lanes += other.des_lanes;
    for (std::size_t i = 0; i < occupancy.size(); ++i) {
      occupancy[i] += other.occupancy[i];
    }
  }
};

/// Per-shard batched episode engine for the analytic schedule. Construct
/// one per shard (the DES context is single-threaded state) and feed it the
/// shard's contiguous episode index range.
class BatchEpisodeEngine {
 public:
  /// Receives every episode's result in strictly increasing episode order —
  /// the same (index, result) sequence the scalar loop produces. The
  /// reference is valid only during the call.
  using ResultSink = std::function<void(std::int64_t, const EpisodeResult&)>;

  /// `episode_rng` is simulate_qos's master.fork(3) stream; `duration_law`
  /// and `plan` (nullable; an empty plan is treated as none) must outlive
  /// the engine. All episodes share `signal_start` — the phase is the
  /// randomized quantity (PASTA). `interleave_width` is the number of armed
  /// lanes multiplexed over one event timeline: 0 means the block width
  /// (kEpisodeBatchWidth), 1 reproduces the sequential drain, and values
  /// outside [0, kEpisodeBatchWidth] are rejected.
  BatchEpisodeEngine(PlaneGeometry geometry, int k, const ProtocolConfig& cfg,
                     bool opportunity_adaptive,
                     const DurationDistribution& duration_law,
                     Rng episode_rng, TimePoint signal_start,
                     const FaultPlan* plan, int interleave_width = 0);

  BatchEpisodeEngine(const BatchEpisodeEngine&) = delete;
  BatchEpisodeEngine& operator=(const BatchEpisodeEngine&) = delete;

  /// Run episodes [begin, end) and deliver each result to `sink` in order.
  /// `trace` (nullable) receives the shard's protocol events; `invariants`
  /// (nullable) audits every drained episode like the scalar hooks do;
  /// `spans` (nullable) records one "prologue" span per block (items =
  /// lanes classified) and one "drain" span per block (items = armed
  /// lanes) — block granularity keeps the profiler inside its <= 5%
  /// overhead gate (bench/span_overhead); `ledger` (nullable) receives
  /// every final drop, retry, and fault activation under the owning
  /// lane's episode id — rows are additive counters, so the ledger bytes
  /// are independent of the interleave width.
  void run(std::int64_t begin, std::int64_t end, ShardTraceBuffer* trace,
           InvariantChecker* invariants, const ResultSink& sink,
           SpanArena* spans = nullptr, EpisodeLedger* ledger = nullptr);

  [[nodiscard]] const BatchEpisodeStats& stats() const { return stats_; }
  /// Resolved interleave width (0 at construction → kEpisodeBatchWidth).
  [[nodiscard]] int interleave_width() const { return width_; }

 private:
  /// One interleave slot's protocol context — its own network, episode,
  /// schedule, and RNG streams over the engine's shared simulator, with
  /// handlers registered once at construction exactly like the sequential
  /// engine's single context. Heap-allocated for address stability (the
  /// handlers capture `this`).
  struct LaneContext {
    LaneContext(Simulator& sim, const PlaneGeometry& geometry, int k,
                const ProtocolConfig& cfg, bool opportunity_adaptive,
                const std::set<SatelliteId>& known_failed,
                bool want_drop_handler);

    /// The lane's protocol stream; its TargetEpisode holds a pointer to it
    /// across reset_for calls.
    Rng protocol_rng;
    AnalyticSchedule schedule;  ///< reassigned per lane (phase changes)
    CrosslinkNetwork net;
    TargetEpisode episode;
    std::optional<FaultInjector> injector;
    /// Reusable stochastic-clause expander: each lane owns one because an
    /// interleaved group keeps up to width_ expanded plans alive at once,
    /// and reuse keeps repeated arms allocation-free (chaos-soak gate).
    FaultProcessExpander expander;
  };

  /// What a block lane turned out to be, deciding its retirement value.
  enum class LaneFate : std::uint8_t {
    kEscaped,   ///< classified closed-form, never touched the DES
    kRejected,  ///< classifier false positive — arm() said no
    kDrained,   ///< ran through the (possibly merged) timeline
  };

  /// Closed-form mirror of TargetEpisode::arm()'s detection decision for
  /// the analytic schedule — same window, same pass enumeration, same
  /// floating-point expressions, no materialized pass list.
  [[nodiscard]] bool lane_detects(Duration phase, Duration duration) const;

  /// Drain one armed lane through context 0 (the width-1 sequential path —
  /// operation for operation the PR 6 drain).
  void run_des_lane(std::int64_t e, Duration phase, Duration duration,
                    ShardTraceBuffer* trace, InvariantChecker* invariants,
                    const ResultSink& sink);

  /// Interleaved retirement of one prologue block: chunk the armed lanes
  /// into groups of <= width_, arm each group up front in the episode-tagged
  /// simulator, drain the merged timeline, snapshot per-lane results at
  /// group end, and emit traces + results in strict episode order.
  void run_block_interleaved(std::int64_t b, int n, ShardTraceBuffer* trace,
                             InvariantChecker* invariants,
                             const ResultSink& sink);

  PlaneGeometry geometry_;
  int k_;
  ProtocolConfig cfg_;
  bool oaq_;
  const DurationDistribution* duration_law_;
  Rng episode_rng_;
  TimePoint signal_start_;
  const FaultPlan* plan_;  ///< normalized: null when absent or empty
  int width_;              ///< resolved interleave width, in [1, block width]
  EpisodeLedger* ledger_ = nullptr;  ///< current run()'s attribution sink

  /// The shared episode-tagged simulator — reset per drained lane at width
  /// 1, per armed group otherwise.
  Simulator sim_;
  std::set<SatelliteId> no_known_failed_;
  /// width_ interleave slots; group slot j drains under episode tag j.
  std::vector<std::unique_ptr<LaneContext>> contexts_;

  // SoA prologue lanes.
  std::array<Duration, kEpisodeBatchWidth> lane_phase_{};
  std::array<Duration, kEpisodeBatchWidth> lane_duration_{};
  std::array<bool, kEpisodeBatchWidth> lane_armed_{};

  // Interleaved-block retirement state, keyed by block lane index (lane
  // contexts are reused across the block's groups, so snapshots cannot
  // live in the contexts).
  std::array<LaneFate, kEpisodeBatchWidth> lane_fate_{};
  /// Per-lane result snapshots; copy-assigned so capacity survives.
  std::array<EpisodeResult, kEpisodeBatchWidth> block_result_;
  /// Per-lane trace staging (lossless), resequenced into the shard ring in
  /// episode order at block retirement.
  std::vector<ShardTraceBuffer> block_staging_;

  /// Scalar-identical retirement value of an escaped lane.
  const EpisodeResult escaped_result_{};
  /// Reused copy target for width-1 drained results (participants capacity
  /// survives, so steady-state episodes copy without allocating).
  EpisodeResult result_buf_;

  BatchEpisodeStats stats_;
};

}  // namespace oaq
