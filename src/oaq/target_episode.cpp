#include "oaq/target_episode.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace oaq {

TimePoint ComputeCalendar::schedule(SatelliteId sat, TimePoint ready,
                                    Duration work) {
  OAQ_REQUIRE(work >= Duration::zero(), "work must be nonnegative");
  auto& free_at = free_at_[sat];
  const TimePoint start = std::max(ready, free_at);
  if (start > ready) {
    ++contended_;
    queueing_ += start - ready;
  }
  free_at = start + work;
  return free_at;
}

TargetEpisode::TargetEpisode(int target_id, Simulator& sim,
                             CrosslinkNetwork& net,
                             const CoverageSchedule& schedule,
                             const ProtocolConfig& cfg,
                             bool opportunity_adaptive, Rng& rng,
                             ComputeCalendar* calendar,
                             const std::set<SatelliteId>* known_failed,
                             ShardTraceBuffer* trace)
    : target_id_(target_id), sim_(&sim), net_(&net), schedule_(&schedule),
      cfg_(&cfg), oaq_(opportunity_adaptive), rng_(&rng),
      calendar_(calendar), known_failed_(known_failed), trace_(trace) {}

void TargetEpisode::trace(TraceEventType type, SatelliteId sat, int peer_slot,
                          int a, double v) const {
  if (trace_ == nullptr) return;
  TraceEvent ev;
  ev.episode = target_id_;
  ev.t_min = sim_->now().since_origin().to_minutes();
  ev.type = type;
  ev.sat = static_cast<std::int16_t>(sat.slot);
  ev.peer = static_cast<std::int16_t>(peer_slot);
  ev.a = a;
  ev.v = v;
  trace_->push(ev);
}

bool TargetEpisode::alive(TimePoint t) const {
  return t >= sig_start_ && t < sig_end_;
}

Duration TargetEpisode::sample_computation() {
  const Duration z = rng_->exponential(cfg_->nu);
  return std::min(z, cfg_->computation_cap);
}

TimePoint TargetEpisode::computation_done(SatelliteId sat) {
  const Duration z = sample_computation();
  if (calendar_ != nullptr) {
    return calendar_->schedule(sat, sim_->now(), z);
  }
  return sim_->now() + z;
}

const std::vector<Pass>& TargetEpisode::covering(TimePoint t) {
  covering_scratch_.clear();
  const Duration d = t.since_origin();
  for (const auto& p : passes_) {
    if (p.start <= d && d < p.end) covering_scratch_.push_back(p);
  }
  return covering_scratch_;
}

TargetEpisode::AgentState& TargetEpisode::agent(SatelliteId id) {
  auto it = std::lower_bound(
      agents_.begin(), agents_.end(), id,
      [](const auto& entry, SatelliteId v) { return entry.first < v; });
  if (it == agents_.end() || it->first != id) {
    it = agents_.insert(it, {id, AgentState{}});
  }
  return it->second;
}

void TargetEpisode::reset_for(int target_id, Rng& rng,
                              ShardTraceBuffer* trace) {
  target_id_ = target_id;
  rng_ = &rng;
  trace_ = trace;
  sig_start_ = TimePoint{};
  sig_end_ = TimePoint{};
  t0_ = TimePoint{};
  deadline_ = TimePoint{};
  passes_.clear();
  agents_.clear();
  // Field-wise result reset that keeps the participants capacity.
  auto participants = std::move(result_.participants);
  participants.clear();
  result_ = EpisodeResult{};
  result_.participants = std::move(participants);
}

std::optional<Pass> TargetEpisode::next_pass_after(Duration after) const {
  for (const auto& p : passes_) {
    if (p.start <= after) continue;
    if (known_failed_ != nullptr && known_failed_->contains(p.satellite)) {
      continue;
    }
    return p;
  }
  return std::nullopt;
}

std::optional<Pass> TargetEpisode::next_pass_of(SatelliteId sat,
                                                Duration after) const {
  for (const auto& p : passes_) {
    if (p.satellite == sat && p.start >= after) return p;
  }
  return std::nullopt;
}

void TargetEpisode::send_alert(SatelliteId reporter,
                               const GeolocationSummary& summary) {
  if (net_->is_failed(Address::sat(reporter))) return;
  AlertMessage alert;
  alert.target_id = target_id_;
  alert.detection_time = t0_;
  alert.sent = sim_->now();
  alert.summary = summary;
  alert.reporter = reporter;
  ++result_.alerts_sent;
  trace(TraceEventType::kAlert, reporter, -1, summary.contributing_passes,
        summary.estimated_error_km);
  net_->send(Address::sat(reporter), Address::ground(), alert,
             target_id_);
}

void TargetEpisode::send_done_downstream(SatelliteId from) {
  auto& st = agent(from);
  if (!st.has_downstream) return;
  CoordinationDone done;
  done.target_id = target_id_;
  done.detection_time = t0_;
  done.reporter = from;
  net_->send(Address::sat(from), Address::sat(st.downstream), done,
             target_id_);
}

void TargetEpisode::finish(SatelliteId sat, TraceEventType cause) {
  auto& st = agent(sat);
  trace(cause, sat, -2, result_.chain_length, st.own.estimated_error_km);
  ++result_.terminations;
  if (st.resolved) ++result_.double_terminations;
  if (cause == TraceEventType::kTermWaitDeadline) ++result_.wait_rescues;
  st.resolved = true;
  send_alert(sat, st.own);
  if (cfg_->backward_messaging) send_done_downstream(sat);
}

bool TargetEpisode::tc1_holds(const GeolocationSummary& s) const {
  return cfg_->error_threshold_km > 0.0 &&
         s.estimated_error_km <= cfg_->error_threshold_km;
}

bool TargetEpisode::tc2_holds(int n) const {
  // δ_eff = δ for best-effort links; with reliable links the margin must
  // absorb the worst-case retry latency (ProtocolConfig::effective_delta).
  const Duration elapsed = sim_->now() - t0_;
  const Duration margin =
      cfg_->tau -
      (static_cast<double>(n) * cfg_->effective_delta() + cfg_->tg);
  return elapsed > margin;
}

void TargetEpisode::after_iteration(SatelliteId sat, Duration my_pass_start) {
  auto& st = agent(sat);
  if (sim_->now() > deadline_) {
    trace(TraceEventType::kTermLate, sat, -2, result_.chain_length,
          st.own.estimated_error_km);
    ++result_.terminations;
    if (st.resolved) ++result_.double_terminations;
    st.resolved = true;  // a downstream timeout already covered the alert
    return;
  }
  if (tc1_holds(st.own)) {
    finish(sat, TraceEventType::kTermTc1);
    return;
  }
  if (tc2_holds(st.ordinal)) {
    finish(sat, TraceEventType::kTermTc2);
    return;
  }
  const auto next = next_pass_after(my_pass_start);
  if (!next || next->satellite == sat) {
    finish(sat, TraceEventType::kTermGeometry);  // nobody else will arrive
    return;
  }
  // Window-of-opportunity margin (the geometry behind Eq. (2), plus the
  // TC-2 timing margin applied to the peer's KNOWN arrival time): continue
  // only if arrival + Tg + n·δ < t0 + τ, which also guarantees the "done"
  // reaches this satellite before its own wait deadline.
  const TimePoint completion_bound =
      TimePoint::at(next->start) + cfg_->tg +
      static_cast<double>(st.ordinal) * cfg_->effective_delta();
  if (completion_bound >= deadline_) {
    finish(sat, TraceEventType::kTermWindow);
    return;
  }
  st.last_request_pass_start = next->start;
  CoordinationRequest req;
  req.target_id = target_id_;
  req.detection_time = t0_;
  req.receiver_ordinal = st.ordinal + 1;
  req.summary = st.own;
  req.requester = sat;
  ++result_.coordination_requests;
  trace(TraceEventType::kChainHop, sat, next->satellite.slot, st.ordinal,
        st.own.estimated_error_km);
  net_->send(Address::sat(sat), Address::sat(next->satellite), req,
             target_id_);

  if (cfg_->backward_messaging) {
    st.waiting = true;
    const TimePoint wait_deadline =
        t0_ + cfg_->tau -
        static_cast<double>(st.ordinal - 1) * cfg_->effective_delta();
    if (wait_deadline <= sim_->now()) {
      on_wait_timeout(sat);
      return;
    }
    st.wait_timeout =
        sim_->schedule_at(wait_deadline, [this, sat] { on_wait_timeout(sat); });
  } else {
    st.resolved = true;  // forward responsibility: no waiting
  }
}

void TargetEpisode::on_wait_timeout(SatelliteId sat) {
  auto& st = agent(sat);
  if (!st.waiting || st.resolved) return;
  trace(TraceEventType::kWaitDeadline, sat, -2, st.ordinal, 0.0);
  st.waiting = false;
  finish(sat, TraceEventType::kTermWaitDeadline);
}

void TargetEpisode::on_done(SatelliteId sat) {
  auto& st = agent(sat);
  if (st.resolved) return;
  trace(TraceEventType::kDone, sat, -2, st.ordinal, 0.0);
  st.resolved = true;
  if (st.waiting) {
    st.waiting = false;
    sim_->cancel(st.wait_timeout);
  }
  if (cfg_->backward_messaging) send_done_downstream(sat);
}

void TargetEpisode::on_request(SatelliteId self,
                               const CoordinationRequest& req) {
  auto& st = agent(self);
  st.ordinal = req.receiver_ordinal;
  st.own = req.summary;  // inherited until own measurements arrive
  st.downstream = req.requester;
  st.has_downstream = true;
  const auto pass =
      next_pass_of(self, sim_->now().since_origin() - Duration::seconds(1));
  if (!pass) {
    handle_cannot_compute(self, sim_->now());
    return;
  }
  const TimePoint arrival = std::max(TimePoint::at(pass->start), sim_->now());
  sim_->schedule_at(arrival, [this, self, pass = *pass, arrival] {
    if (!alive(arrival)) {
      handle_cannot_compute(self, arrival);  // TC-3
      return;
    }
    auto& state = agent(self);
    state.own.contributing_passes += 1;
    state.own.simultaneous = false;
    state.own.estimated_error_km =
        cfg_->accuracy.sequential_error_km(state.own.contributing_passes);
    result_.participants.push_back(self);
    result_.chain_length =
        std::max(result_.chain_length, state.own.contributing_passes);
    const TimePoint done_at = computation_done(self);
    sim_->schedule_at(done_at, [this, self, start = pass.start] {
      after_iteration(self, start);
    });
  });
}

void TargetEpisode::handle_cannot_compute(SatelliteId self, TimePoint when) {
  auto& st = agent(self);
  trace(TraceEventType::kTermTc3, self, -2, result_.chain_length,
        st.own.estimated_error_km);
  ++result_.terminations;
  if (st.resolved) ++result_.double_terminations;
  st.resolved = true;
  if (!cfg_->backward_messaging) {
    // Forward responsibility: forward the predecessor's result (timeliness
    // recorded at the ground).
    (void)when;
    send_alert(self, st.own);
  }
  // Backward messaging: stay silent; the predecessor's timeout fires.
}

void TargetEpisode::on_detection() {
  result_.detected = true;
  result_.detection = t0_;
  const auto& cover = covering(t0_);
  OAQ_ENSURE(!cover.empty(), "detection without coverage");
  const SatelliteId s1 = cover.front().satellite;
  auto& st = agent(s1);
  st.ordinal = 1;
  result_.participants.push_back(s1);
  trace(TraceEventType::kDetection, s1, -2, static_cast<int>(cover.size()),
        0.0);

  if (cover.size() >= 2) {
    start_simultaneous(s1, static_cast<int>(cover.size()));
    return;
  }

  st.own.contributing_passes = 1;
  st.own.simultaneous = false;
  st.own.estimated_error_km = cfg_->accuracy.sequential_error_km(1);
  result_.chain_length = 1;

  if (!oaq_) {
    sim_->schedule_after(cfg_->tg,
                         [this, s1] { finish(s1, TraceEventType::kTermBaq); });
    return;
  }

  // OAQ: is a simultaneous-coverage opportunity coming before τ? The
  // sweep starts at t0, so the first window (when any) is the one whose
  // start the withhold targets.
  const std::optional<Duration> t_sim = first_overlap_start(
      passes_, t0_.since_origin(), deadline_.since_origin(), overlap_scratch_);
  if (t_sim) {
    trace(TraceEventType::kWithhold, s1, -2, 0,
          (*t_sim - t0_.since_origin()).to_minutes());
    sim_->schedule_at(TimePoint::at(*t_sim), [this, s1, t = *t_sim] {
      if (!alive(TimePoint::at(t))) {
        schedule_preliminary_at_deadline(s1);
        return;
      }
      start_simultaneous(s1, 2);
    });
    return;
  }
  sim_->schedule_after(cfg_->tg, [this, s1, pass_start = cover.front().start] {
    after_iteration(s1, pass_start);
  });
}

void TargetEpisode::start_simultaneous(SatelliteId s1, int co_observers) {
  auto& st = agent(s1);
  st.own.contributing_passes = co_observers;
  st.own.simultaneous = true;
  st.own.estimated_error_km = cfg_->accuracy.simultaneous_error_km();
  result_.chain_length = std::max(result_.chain_length, co_observers);
  const TimePoint done_at = computation_done(s1);
  if (done_at <= deadline_) {
    sim_->schedule_at(done_at, [this, s1] {
      finish(s1, TraceEventType::kTermSimultaneous);
    });
  } else {
    schedule_preliminary_at_deadline(s1);
  }
}

void TargetEpisode::schedule_preliminary_at_deadline(SatelliteId s1) {
  sim_->schedule_at(deadline_, [this, s1] {
    auto& st = agent(s1);
    st.own.contributing_passes = 1;
    st.own.simultaneous = false;
    st.own.estimated_error_km = cfg_->accuracy.sequential_error_km(1);
    finish(s1, TraceEventType::kTermPreliminary);
  });
}

bool TargetEpisode::arm(TimePoint signal_start, Duration signal_duration) {
  OAQ_REQUIRE(signal_duration > Duration::zero(),
              "signal duration must be positive");
  sig_start_ = signal_start;
  sig_end_ = signal_start + signal_duration;

  const Duration from = signal_start.since_origin() - Duration::minutes(20);
  const Duration to = signal_start.since_origin() +
                      std::min(signal_duration, Duration::minutes(30)) +
                      cfg_->tau + Duration::minutes(60);
  schedule_->passes_into(from, to, passes_);

  std::optional<TimePoint> t0;
  if (!covering(signal_start).empty()) {
    t0 = signal_start;
  } else {
    for (const auto& p : passes_) {
      const TimePoint start = TimePoint::at(p.start);
      if (start >= signal_start && alive(start)) {
        t0 = start;
        break;
      }
      if (start >= sig_end_) break;
    }
  }
  result_.horizon_passes = static_cast<int>(passes_.size());
  if (!t0) return false;  // escapes surveillance

  t0_ = *t0;
  deadline_ = *t0 + cfg_->tau;
  // Agents materialize lazily on first touch: only the satellites the
  // coordination actually reaches (the chain, not the whole pass horizon)
  // ever get state. Default-constructed states are invisible to
  // finalize() (ordinal == 0), so skipping the old horizon-wide pre-touch
  // — at mega-constellation scale, hundreds of entries per episode — is
  // behavior-neutral and keeps arm() O(|passes|).
  sim_->schedule_at(t0_, [this] { on_detection(); });
  return true;
}

void TargetEpisode::handle_satellite_message(SatelliteId self,
                                             const Envelope& env) {
  if (const auto* req = env.payload.get_if<CoordinationRequest>()) {
    if (req->target_id == target_id_) on_request(self, *req);
    return;
  }
  if (const auto* done = env.payload.get_if<CoordinationDone>()) {
    if (done->target_id == target_id_) on_done(self);
  }
}

void TargetEpisode::handle_ground_alert(const AlertMessage& alert) {
  if (alert.target_id != target_id_) return;
  if (result_.alert_delivered) return;
  result_.alert_delivered = true;
  result_.level = alert.summary.level();
  result_.reported_error_km = alert.summary.estimated_error_km;
  result_.first_alert_sent = alert.sent;
  result_.timely = alert.sent <= deadline_;
  trace(TraceEventType::kAlertDelivered, alert.reporter, -1,
        to_int(result_.level), (alert.sent - t0_).to_minutes());
}

void TargetEpisode::handle_send_failure(const Envelope& env,
                                        DropReason reason) {
  (void)reason;
  // Only coordination requests are re-routed: a lost "done" is covered by
  // the wait-deadline rescue, and downlink alerts are lossless.
  const auto* req = env.payload.get_if<CoordinationRequest>();
  if (req == nullptr || req->target_id != target_id_) return;
  const SatelliteId sat = req->requester;
  auto& st = agent(sat);
  // Backward messaging: a requester that already resolved (rescue fired,
  // or done arrived through an earlier route) must not grow the chain.
  if (cfg_->backward_messaging && (st.resolved || !st.waiting)) return;
  if (sim_->now() > deadline_) return;  // past τ the rescue already covers
  if (net_->is_failed(Address::sat(sat))) return;

  // Next live downstream candidate, skipping the requester itself and the
  // peer that just failed. With self-healing links on, a first scan also
  // skips candidates reachable only over a demoted (avoided) link; if no
  // healthy candidate is feasible, a second scan allows them — probing a
  // suspect link is never worse than giving up.
  const bool health = net_->options().health.enabled;
  std::optional<Pass> next;
  bool rerouted = false;
  for (int scan = 0; scan < (health ? 2 : 1) && !next; ++scan) {
    const bool avoid = health && scan == 0;
    bool avoided_any = false;
    Duration after = st.last_request_pass_start;
    for (;;) {
      next = next_pass_after(after);
      if (!next) break;  // chain exhausted on this scan
      if (next->satellite != sat && next->satellite != env.to.satellite) {
        if (avoid &&
            net_->link_avoided(sat.plane, next->satellite.plane)) {
          avoided_any = true;
          after = next->start;
          next.reset();
          continue;
        }
        break;
      }
      after = next->start;
      next.reset();
    }
    // A re-route is a resend that skipped >= 1 demoted relay AND settled
    // on a healthy one; the allow-all second scan is a probe, not one.
    rerouted = next.has_value() && avoid && avoided_any;
  }
  if (!next) return;  // chain exhausted; the wait deadline stands
  const TimePoint completion_bound =
      TimePoint::at(next->start) + cfg_->tg +
      static_cast<double>(st.ordinal) * cfg_->effective_delta();
  if (completion_bound >= deadline_) return;  // no window left

  if (rerouted) {
    // Counted against invariant I9's livelock bound; each re-route
    // strictly advances the requester's pass cursor.
    ++result_.reroutes;
    net_->note_reroute(target_id_);
  }
  st.last_request_pass_start = next->start;
  ++result_.coordination_requests;
  trace(TraceEventType::kChainHop, sat, next->satellite.slot, st.ordinal,
        st.own.estimated_error_km);
  net_->send(Address::sat(sat), Address::sat(next->satellite), *req,
             target_id_);
}

void TargetEpisode::finalize() {
  for (const auto& [id, st] : agents_) {
    if (st.ordinal > 0 && !st.resolved &&
        !net_->is_failed(Address::sat(id))) {
      result_.all_participants_resolved = false;
    }
  }
}

std::vector<SatelliteId> TargetEpisode::horizon_satellites() const {
  // Sorted-unique satellites of the armed pass horizon — the same set the
  // horizon-wide agent pre-touch used to enumerate, now derived from the
  // passes directly so agents_ can stay participants-only.
  std::vector<SatelliteId> out;
  out.reserve(passes_.size());
  for (const auto& p : passes_) out.push_back(p.satellite);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace oaq
