// Coverage schedules: when does which satellite cover the target?
//
// The protocol engine consumes an abstract schedule so the same machinery
// runs in two modes:
//   * AnalyticSchedule — the paper's Fig. 6 timing-diagram idealization:
//     a single plane with k evenly spaced satellites sweeping a centerline
//     point; passes are exactly periodic with period Tr and length Tc.
//     This mode matches the closed-form QoS model's assumptions one-to-one
//     and is used for cross-validation.
//   * GeometricSchedule — passes extracted from true orbital geometry by
//     the PassPredictor (src/orbit/visibility); used by the examples.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "analytic/geometry.hpp"
#include "orbit/shared_visibility_cache.hpp"
#include "orbit/visibility.hpp"
#include "orbit/visibility_cache.hpp"

namespace oaq {

/// Abstract source of satellite passes over one target.
class CoverageSchedule {
 public:
  virtual ~CoverageSchedule() = default;

  /// All passes intersecting [from, to], sorted by start time.
  [[nodiscard]] virtual std::vector<Pass> passes(Duration from,
                                                 Duration to) const = 0;

  /// Same passes written into `out` (cleared first) so hot paths can reuse
  /// one buffer across calls. The default delegates to passes();
  /// AnalyticSchedule overrides with a direct allocation-free enumeration.
  virtual void passes_into(Duration from, Duration to,
                           std::vector<Pass>& out) const {
    out = passes(from, to);
  }
};

/// Timing-diagram schedule for one plane and a centerline target.
class AnalyticSchedule final : public CoverageSchedule {
 public:
  /// `k` active satellites; the first pass-center crosses the target at
  /// `phase` (use a uniform random phase in [0, Tr) for PASTA sampling).
  AnalyticSchedule(PlaneGeometry geometry, int k, Duration phase);

  [[nodiscard]] std::vector<Pass> passes(Duration from,
                                         Duration to) const override;

  void passes_into(Duration from, Duration to,
                   std::vector<Pass>& out) const override;

  [[nodiscard]] const PlaneGeometry& geometry() const { return geometry_; }
  [[nodiscard]] int k() const { return k_; }
  [[nodiscard]] Duration phase() const { return phase_; }

 private:
  PlaneGeometry geometry_;
  int k_;
  Duration phase_;
};

/// Schedule backed by real constellation geometry.
class GeometricSchedule final : public CoverageSchedule {
 public:
  GeometricSchedule(const Constellation& constellation, GeoPoint target,
                    bool earth_rotation = false);

  /// Cached variant: queries go through `cache` (quantized windows, see
  /// VisibilityCache::passes_window), so many episodes sharing one
  /// schedule pay the Kepler cost per distinct window instead of per
  /// call. The cache must outlive the schedule; the schedule is intended
  /// for single-threaded (per-shard) use, like the cache itself.
  GeometricSchedule(VisibilityCache& cache, GeoPoint target);

  /// Shared-cache variant: queries hit the frozen cross-shard cache
  /// lock-free (hot-path callers that want the allocation-free form use
  /// SharedVisibilityCache::passes_window_into directly). The cache must
  /// be frozen before the first passes() call and outlive the schedule.
  /// Create one schedule per shard; `stats`, when given, accumulates that
  /// shard's deterministic hit/miss counts and must outlive the schedule.
  GeometricSchedule(const SharedVisibilityCache& cache, GeoPoint target,
                    VisibilityCacheStats* stats = nullptr);

  [[nodiscard]] std::vector<Pass> passes(Duration from,
                                         Duration to) const override;

  /// Allocation-free in the steady state when backed by either cache (the
  /// quantized window is served from the cached sweep into `out`'s reused
  /// capacity); the uncached predictor fallback delegates to passes().
  void passes_into(Duration from, Duration to,
                   std::vector<Pass>& out) const override;

 private:
  const Constellation* constellation_;
  GeoPoint target_;
  bool earth_rotation_;
  VisibilityCache* cache_ = nullptr;
  const SharedVisibilityCache* shared_cache_ = nullptr;
  VisibilityCacheStats* shared_stats_ = nullptr;
};

/// Overlap windows (≥2 satellites simultaneously covering) in a pass list.
/// Returns maximal intervals, sorted.
[[nodiscard]] std::vector<CoverageSegment> overlap_windows(
    const std::vector<Pass>& passes, Duration from, Duration to);

/// Pass-boundary event; the reusable scratch of first_overlap_start.
struct OverlapEvent {
  Duration at;
  bool enter = false;
};

/// Start of the first overlap window in [from, to] — the value
/// `overlap_windows(...).front().start` would produce — or nullopt when no
/// window exists. Streams the multiplicity sweep through `scratch` (reused
/// across calls) instead of materializing segments, so the protocol hot
/// path pays no allocation once the scratch has grown.
[[nodiscard]] std::optional<Duration> first_overlap_start(
    const std::vector<Pass>& passes, Duration from, Duration to,
    std::vector<OverlapEvent>& scratch);

}  // namespace oaq
