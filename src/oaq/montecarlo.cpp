#include "oaq/montecarlo.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <optional>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "fault/invariants.hpp"
#include "fault/plan.hpp"
#include "obs/ledger.hpp"
#include "oaq/batch_episode.hpp"
#include "oaq/pooled_episode.hpp"
#include "orbit/shared_visibility_cache.hpp"

namespace oaq {
namespace {

std::int64_t checked_add(std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  OAQ_REQUIRE(!__builtin_add_overflow(a, b, &out),
              "episode statistics counter overflow");
  return out;
}

/// Private per-shard tallies; merging in shard order is exact because every
/// field is integral (DiscretePmf weights are integer-valued doubles) and
/// MetricsRegistry merges counters integrally / stats via the same
/// left-to-right Chan fold as RunningStat.
struct EpisodeAccum {
  DiscretePmf level_pmf;
  std::int64_t duplicates = 0;
  std::int64_t unresolved = 0;
  std::int64_t untimely = 0;
  std::int64_t detected = 0;
  std::int64_t chain_sum = 0;
  int max_chain_length = 0;
  MetricsRegistry metrics;  ///< shard-local; empty when metrics are off
  InvariantChecker invariants;  ///< shard-local; idle when checks are off
  EpisodeLedger ledger;  ///< shard-local; untouched when no sink is attached

  void merge(EpisodeAccum&& other) {
    level_pmf.merge(other.level_pmf);
    duplicates = checked_add(duplicates, other.duplicates);
    unresolved = checked_add(unresolved, other.unresolved);
    untimely = checked_add(untimely, other.untimely);
    detected = checked_add(detected, other.detected);
    chain_sum = checked_add(chain_sum, other.chain_sum);
    max_chain_length = std::max(max_chain_length, other.max_chain_length);
    metrics.merge(other.metrics);
    invariants.merge(other.invariants);
    ledger.merge(other.ledger);
  }
};

/// Record one episode's outcome into a shard-local registry. Every value
/// derives from the episode result / telemetry (simulation time), so the
/// merged registry is deterministic for any worker count. `queue_metrics`
/// additionally exports the DES ready-queue telemetry (off by default: the
/// golden metrics files predate the sim.queue.* keys).
void record_episode_metrics(MetricsRegistry& m, const EpisodeResult& r,
                            bool queue_metrics, bool fault_metrics,
                            bool health_metrics) {
  m.add("episodes", 1);
  if (r.detected) m.add("episodes.detected", 1);
  if (r.alert_delivered) m.add("alerts.delivered", 1);
  if (r.alert_delivered && r.timely) m.add("alerts.timely", 1);
  if (r.alert_delivered && !r.timely) m.add("alerts.untimely", 1);
  if (r.alerts_sent > 1) m.add("alerts.duplicate_episodes", 1);
  if (!r.all_participants_resolved) m.add("episodes.unresolved", 1);
  m.add("alerts.sent", r.alerts_sent);
  m.add("coordination.requests", r.coordination_requests);
  m.add("xlink.sent", static_cast<std::int64_t>(r.telemetry.messages_sent));
  m.add("xlink.delivered",
        static_cast<std::int64_t>(r.telemetry.messages_delivered));
  m.add("xlink.dropped_loss",
        static_cast<std::int64_t>(r.telemetry.messages_dropped_loss));
  m.add("xlink.dropped_dead",
        static_cast<std::int64_t>(r.telemetry.messages_dropped_dead));
  m.add("sim.events", static_cast<std::int64_t>(r.telemetry.sim_events));
  m.observe("sim.peak_pending",
            static_cast<double>(r.telemetry.sim_peak_pending));
  if (queue_metrics) {
    m.add("sim.queue.runs_created",
          static_cast<std::int64_t>(r.telemetry.sim_runs_created));
    m.add("sim.queue.run_merges",
          static_cast<std::int64_t>(r.telemetry.sim_run_merges));
    m.add("sim.queue.tombstones_purged",
          static_cast<std::int64_t>(r.telemetry.sim_tombstones_purged));
    m.observe("sim.queue.max_run_length",
              static_cast<double>(r.telemetry.sim_max_run_length));
  }
  if (fault_metrics) {
    // Gated like sim.queue.*: only fault-plan / reliable-link runs emit
    // these, so the golden metrics files stay byte-identical.
    m.add("xlink.dropped_link",
          static_cast<std::int64_t>(r.telemetry.messages_dropped_link));
    m.add("net.retry.attempts",
          static_cast<std::int64_t>(r.telemetry.retries));
    m.add("net.retry.exhausted",
          static_cast<std::int64_t>(r.telemetry.retries_exhausted));
    m.add("net.fault.injected",
          static_cast<std::int64_t>(r.telemetry.faults_injected));
  }
  if (health_metrics) {
    // Gated on self-healing links (opt-in): the pre-ISSUE-10 golden
    // metrics files — including reliable-mode ones — predate these keys.
    m.add("net.health.demoted",
          static_cast<std::int64_t>(r.telemetry.links_demoted));
    m.add("net.health.restored",
          static_cast<std::int64_t>(r.telemetry.links_restored));
    m.add("net.health.probes",
          static_cast<std::int64_t>(r.telemetry.link_probes));
    m.add("net.health.probations",
          static_cast<std::int64_t>(r.telemetry.link_probations));
    m.add("episodes.reroutes", static_cast<std::int64_t>(r.reroutes));
    m.add("net.lifecycle.deaths",
          static_cast<std::int64_t>(r.telemetry.lifecycle_deaths));
    m.add("net.lifecycle.spares",
          static_cast<std::int64_t>(r.telemetry.lifecycle_spares));
  }
  if (r.detected) {
    m.observe("chain.length", static_cast<double>(r.chain_length));
    m.observe("alerts.reported_error_km", r.reported_error_km);
  }
}

}  // namespace

SimulatedQos simulate_qos(const QosSimulationConfig& config) {
  OAQ_REQUIRE(config.k > 0, "need at least one satellite");
  OAQ_REQUIRE(config.episodes > 0, "need at least one episode");
  OAQ_REQUIRE(config.mu > Rate::zero(), "termination rate must be positive");
  OAQ_REQUIRE(
      config.interleave_width >= 0 &&
          config.interleave_width <= kEpisodeBatchWidth,
      "interleave width must be 0 (block width) or in [1, block width]");

  const Rng master(config.seed);
  const Rng episode_rng = master.fork(3);
  const std::shared_ptr<const DurationDistribution> duration_law =
      config.duration_distribution
          ? config.duration_distribution
          : std::make_shared<ExponentialDuration>(config.mu);

  // Fixed signal start well inside the horizon; the pass-pattern phase is
  // randomized instead (equivalent by stationarity).
  const TimePoint signal_start = TimePoint::at(Duration::minutes(60));
  const Duration tr = config.geometry.tr(config.k);

  // Tracing: one ring buffer per shard, sized up front. A shard's stream
  // depends only on its episode indices (episodes within a shard run
  // sequentially), so the shard-order JSONL export is bit-identical for
  // any jobs value.
  const int n_shards = static_cast<int>(std::min<std::int64_t>(
      kQosEpisodeShards, config.episodes));  // parallel_reduce's own clamp
  if (config.trace != nullptr) config.trace->prepare(n_shards);
  const bool want_metrics = config.metrics != nullptr;

  // Span profiling mirrors the trace layout: one arena per shard plus the
  // main arena for the calling thread's work (seed/freeze, merge). The
  // root span brackets the whole experiment.
  if (config.spans != nullptr) config.spans->prepare(n_shards);
  SpanArena* main_spans =
      config.spans != nullptr ? config.spans->main_arena() : nullptr;
  const ScopedSpan root_span(main_spans, "simulate_qos");

  // Every random stream an episode consumes (phase, duration, protocol
  // noise) derives from episode_rng.fork(e): episode e's outcome does not
  // depend on which shard — or thread — runs it, making the reduction
  // bit-identical for any jobs value. In geometric mode the schedule is
  // shard-shared (backed by the shard's VisibilityCache) and the phase
  // jitters the episode's start time instead of the pass pattern.
  const bool geometric = config.constellation != nullptr;
  const bool fault_metrics = config.fault_plan != nullptr ||
                             config.protocol.reliable_links ||
                             config.protocol.self_healing_links;
  const bool health_metrics = config.protocol.self_healing_links;
  // Shared between the scalar loop and the batch engine's sink so both
  // paths fold results — and observe metrics — in exactly the same order.
  const auto accumulate = [&](EpisodeAccum& acc, const EpisodeResult& r) {
    acc.level_pmf.add(to_int(r.alert_delivered ? r.level : QosLevel::kMissed));
    if (r.alerts_sent > 1) ++acc.duplicates;
    if (!r.all_participants_resolved) ++acc.unresolved;
    if (r.alert_delivered && !r.timely) ++acc.untimely;
    if (r.detected) {
      ++acc.detected;
      acc.chain_sum = checked_add(acc.chain_sum, r.chain_length);
      acc.max_chain_length = std::max(acc.max_chain_length, r.chain_length);
    }
    if (want_metrics) {
      record_episode_metrics(acc.metrics, r, config.queue_metrics,
                             fault_metrics, health_metrics);
    }
  };
  const auto run_episode = [&](std::int64_t e, EpisodeAccum& acc,
                               ShardTraceBuffer* trace,
                               const GeometricSchedule* geo_schedule) {
    const Rng ep = episode_rng.fork(static_cast<std::uint64_t>(e));
    Rng phase_rng = ep.fork(1);
    Rng duration_rng = ep.fork(2);
    Rng protocol_rng = ep.fork(3);
    const Duration phase = phase_rng.uniform(
        Duration::zero(),
        // Jitter over the longest shell period so every shell's pass
        // pattern is phase-randomized (= design().period single-shell).
        geometric ? config.constellation->max_period() : tr);
    const Duration duration = duration_law->sample(duration_rng);
    EpisodeFaultHooks hooks;
    hooks.plan = config.fault_plan;
    hooks.invariants = config.check_invariants ? &acc.invariants : nullptr;
    hooks.ledger = config.ledger != nullptr ? &acc.ledger : nullptr;
    const EpisodeFaultHooks* hooks_ptr =
        config.fault_plan != nullptr || config.check_invariants ||
                config.ledger != nullptr
            ? &hooks
            : nullptr;
    EpisodeResult r;
    if (geometric) {
      const EpisodeEngine engine(*geo_schedule, config.protocol,
                                 config.opportunity_adaptive);
      r = engine.run(signal_start + phase, duration, protocol_rng,
                     /*faults=*/{}, /*known_failed=*/{}, trace,
                     static_cast<int>(e), hooks_ptr);
    } else {
      const AnalyticSchedule schedule(config.geometry, config.k, phase);
      const EpisodeEngine engine(schedule, config.protocol,
                                 config.opportunity_adaptive);
      r = engine.run(signal_start, duration, protocol_rng, /*faults=*/{},
                     /*known_failed=*/{}, trace, static_cast<int>(e),
                     hooks_ptr);
    }

    accumulate(acc, r);
  };

  // The quantum is sized to cover every episode window (start jitter ≤ one
  // period, pass horizon ≤ signal cap + τ + post-roll), so virtually every
  // episode query quantizes to the same [0, quantum] window — one Kepler
  // sweep serves the whole run.
  VisibilityCache::Options vopt;
  if (geometric) {
    vopt.window_quantum = signal_start.since_origin() +
                          config.constellation->max_period() +
                          config.protocol.tau + Duration::hours(2);
  }

  // The satellite set every pooled shard registers — computed once on the
  // calling thread (it is identical for every shard; the shards' dense
  // network tables are still first-touched on their own threads).
  std::vector<SatelliteId> pooled_satellites;
  if (geometric && config.pooled_episodes) {
    pooled_satellites = config.constellation->active_satellites();
  }

  // Shared mode: that one sweep is computed ONCE on the calling thread
  // (seed), frozen, and then read lock-free by every shard — instead of
  // once per shard with private caches. Cached values are pure functions
  // of the query either way, so both modes are bit-identical at any jobs.
  std::optional<SharedVisibilityCache> shared_cache;
  SeedFreezeHook seed_hook;
  int seed_executors = 0;
  if (geometric && config.shared_visibility) {
    shared_cache.emplace(*config.constellation, config.earth_rotation, vopt);
    seed_hook.seed = [&shared_cache, &config, &vopt, &seed_executors,
                      main_spans] {
      const ScopedSpan span(main_spans, "visibility_seed");
      // Single-target runs seed serially (seed_windows degrades to the
      // plain loop); the fan-out pays off for multi-target workloads.
      seed_executors = shared_cache->seed_windows(
          {config.target}, Duration::zero(), vopt.window_quantum,
          config.jobs);
    };
    seed_hook.freeze = [&shared_cache, main_spans] {
      const ScopedSpan span(main_spans, "visibility_freeze");
      shared_cache->freeze();
    };
  }

  EpisodeAccum total = parallel_reduce<EpisodeAccum>(
      config.episodes, n_shards, config.jobs,
      [&](std::int64_t begin, std::int64_t end, int shard) {
        EpisodeAccum acc;
        ShardTraceBuffer* trace =
            config.trace != nullptr ? config.trace->shard(shard) : nullptr;
        SpanArena* spans = config.spans != nullptr
                               ? config.spans->shard_arena(shard)
                               : nullptr;
        const ScopedSpan shard_span(spans, "shard");
        if (!geometric && config.batch_episodes) {
          // SoA batch path: one reusable DES context per shard, closed-form
          // escape retirement, results delivered in episode order — the
          // same fold as the scalar loop below, byte for byte.
          BatchEpisodeEngine engine(config.geometry, config.k,
                                    config.protocol,
                                    config.opportunity_adaptive,
                                    *duration_law, episode_rng, signal_start,
                                    config.fault_plan,
                                    config.interleave_width);
          engine.run(begin, end, trace,
                     config.check_invariants ? &acc.invariants : nullptr,
                     [&](std::int64_t, const EpisodeResult& r) {
                       accumulate(acc, r);
                     },
                     spans,
                     config.ledger != nullptr ? &acc.ledger : nullptr);
          if (want_metrics && config.batch_metrics) {
            const BatchEpisodeStats& bs = engine.stats();
            acc.metrics.add("sim.batch.batches",
                            static_cast<std::int64_t>(bs.batches));
            acc.metrics.add("sim.batch.episodes",
                            static_cast<std::int64_t>(bs.episodes));
            acc.metrics.add("sim.batch.escaped",
                            static_cast<std::int64_t>(bs.escaped));
            acc.metrics.add("sim.batch.des_lanes",
                            static_cast<std::int64_t>(bs.des_lanes));
            for (std::size_t i = 0; i < bs.occupancy.size(); ++i) {
              acc.metrics.add(
                  "sim.batch.occupancy." + std::to_string(i),
                  static_cast<std::int64_t>(bs.occupancy[i]));
            }
          }
          return acc;
        }
        // Per-shard schedule over either the frozen shared cache (with
        // shard-local stats — hit accounting is per-shard deterministic)
        // or a shard-private VisibilityCache.
        VisibilityCacheStats shared_stats;
        std::optional<VisibilityCache> cache;
        std::optional<GeometricSchedule> geo_schedule;
        if (shared_cache) {
          geo_schedule.emplace(*shared_cache, config.target, &shared_stats);
        } else if (geometric) {
          cache.emplace(*config.constellation, config.earth_rotation, vopt);
          geo_schedule.emplace(*cache, config.target);
        }
        // One "episodes" span per shard, items = episode count: per-episode
        // spans would cost two clock reads each (the span_overhead gate).
        {
          const ScopedSpan episodes_span(spans, "episodes");
          if (spans != nullptr) spans->add_items(end - begin);
          if (geo_schedule && config.pooled_episodes) {
            // Pooled geometric path: one reusable DES context per shard
            // (the geometric sibling of the batch engine above), fed the
            // exact per-episode streams the scalar loop forks — the fold
            // below is byte-identical to run_episode's.
            PooledEpisodeRunner runner(*geo_schedule, pooled_satellites,
                                       config.protocol,
                                       config.opportunity_adaptive,
                                       config.fault_plan);
            InvariantChecker* inv =
                config.check_invariants ? &acc.invariants : nullptr;
            for (std::int64_t e = begin; e < end; ++e) {
              const Rng ep = episode_rng.fork(static_cast<std::uint64_t>(e));
              Rng phase_rng = ep.fork(1);
              Rng duration_rng = ep.fork(2);
              const Duration phase = phase_rng.uniform(
                  Duration::zero(), config.constellation->max_period());
              const Duration duration = duration_law->sample(duration_rng);
              accumulate(acc,
                         runner.run_episode(e, ep.fork(3),
                                            signal_start + phase, duration,
                                            trace, inv));
            }
          } else {
            for (std::int64_t e = begin; e < end; ++e) {
              run_episode(e, acc, trace,
                          geo_schedule ? &*geo_schedule : nullptr);
            }
          }
        }
        if (geometric && want_metrics) {
          const VisibilityCacheStats& vs =
              shared_cache ? shared_stats : cache->stats();
          acc.metrics.add("visibility.pass_queries",
                          static_cast<std::int64_t>(vs.pass_queries));
          acc.metrics.add("visibility.pass_hits",
                          static_cast<std::int64_t>(vs.pass_hits));
          if (!shared_cache) {
            acc.metrics.add("visibility.cache_entries",
                            static_cast<std::int64_t>(cache->entry_count()));
          }
        }
        return acc;
      },
      [main_spans](EpisodeAccum& into, EpisodeAccum&& from) {
        // Runs on the calling thread in both the inline and pooled paths,
        // exactly n_shards - 1 times — the span count is jobs-independent.
        const ScopedSpan span(main_spans, "merge");
        into.merge(std::move(from));
      },
      config.profile, shared_cache ? &seed_hook : nullptr);

  if (shared_cache && want_metrics) {
    // Global cache size, added once after the reduce (a per-shard export
    // would multiply the shared count by the shard count).
    total.metrics.add(
        "visibility.cache_entries",
        static_cast<std::int64_t>(shared_cache->frozen_entries() +
                                  shared_cache->overflow_entries()));
    if (seed_executors > 1) {
      // Emitted only when the seed phase actually fanned out, so
      // single-target runs — and the golden metrics files — see no new key.
      total.metrics.add("visibility.seed_parallel", seed_executors);
    }
  }

  if (want_metrics && config.check_invariants) {
    // Added once after the reduce, like visibility.cache_entries.
    total.metrics.add(
        "invariant.violations",
        static_cast<std::int64_t>(total.invariants.violations()));
  }
  if (want_metrics) *config.metrics = std::move(total.metrics);
  if (config.ledger != nullptr) {
    // Quiet top episode ids leave shard ledgers short; size the merged
    // ledger to the run so row(e) is valid for every episode.
    total.ledger.reserve(static_cast<std::size_t>(config.episodes));
    *config.ledger = std::move(total.ledger);
  }

  SimulatedQos out;
  out.episodes = config.episodes;
  out.level_pmf = std::move(total.level_pmf);
  out.duplicates = total.duplicates;
  out.unresolved = total.unresolved;
  out.untimely = total.untimely;
  out.max_chain_length = total.max_chain_length;
  out.invariant_violations =
      static_cast<std::int64_t>(total.invariants.violations());
  out.invariant_samples = total.invariants.samples();
  out.mean_chain_length =
      total.detected > 0
          ? static_cast<double>(total.chain_sum) /
                static_cast<double>(total.detected)
          : 0.0;
  return out;
}

}  // namespace oaq
