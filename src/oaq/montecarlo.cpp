#include "oaq/montecarlo.hpp"

#include "common/error.hpp"

namespace oaq {

SimulatedQos simulate_qos(const QosSimulationConfig& config) {
  OAQ_REQUIRE(config.k > 0, "need at least one satellite");
  OAQ_REQUIRE(config.episodes > 0, "need at least one episode");
  OAQ_REQUIRE(config.mu > Rate::zero(), "termination rate must be positive");

  Rng master(config.seed);
  Rng phase_rng = master.fork(1);
  Rng duration_rng = master.fork(2);
  Rng episode_rng = master.fork(3);
  const std::shared_ptr<const DurationDistribution> duration_law =
      config.duration_distribution
          ? config.duration_distribution
          : std::make_shared<ExponentialDuration>(config.mu);

  // Fixed signal start well inside the horizon; the pass-pattern phase is
  // randomized instead (equivalent by stationarity).
  const TimePoint signal_start = TimePoint::at(Duration::minutes(60));
  const Duration tr = config.geometry.tr(config.k);

  SimulatedQos out;
  out.episodes = config.episodes;
  long chain_sum = 0;
  int detected = 0;

  for (int e = 0; e < config.episodes; ++e) {
    const Duration phase = phase_rng.uniform(Duration::zero(), tr);
    const AnalyticSchedule schedule(config.geometry, config.k, phase);
    const EpisodeEngine engine(schedule, config.protocol,
                               config.opportunity_adaptive);
    const Duration duration = duration_law->sample(duration_rng);
    Rng rng = episode_rng.fork(static_cast<std::uint64_t>(e));
    const EpisodeResult r = engine.run(signal_start, duration, rng);

    out.level_pmf.add(to_int(r.alert_delivered ? r.level : QosLevel::kMissed));
    if (r.alerts_sent > 1) ++out.duplicates;
    if (!r.all_participants_resolved) ++out.unresolved;
    if (r.alert_delivered && !r.timely) ++out.untimely;
    if (r.detected) {
      ++detected;
      chain_sum += r.chain_length;
      out.max_chain_length = std::max(out.max_chain_length, r.chain_length);
    }
  }
  out.mean_chain_length =
      detected > 0 ? static_cast<double>(chain_sum) / detected : 0.0;
  return out;
}

}  // namespace oaq
