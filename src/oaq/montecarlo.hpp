// Monte-Carlo QoS estimation: many signal episodes against one plane.
//
// Reproduces P(Y = y | k) by simulation of the actual protocol — the
// cross-validation counterpart of the closed-form model in src/analytic
// (DESIGN.md experiment E10).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analytic/geometry.hpp"
#include "common/distribution.hpp"
#include "common/parallel.hpp"
#include "common/stats.hpp"
#include "oaq/episode.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"

namespace oaq {

class EpisodeLedger;  // src/obs/ledger.hpp

/// Episode-count shard target of simulate_qos: enough shards for good load
/// balance at any realistic worker count, few enough that per-shard setup
/// is negligible. Fixed (never derived from the worker count) so the merge
/// tree — and the per-shard trace streams — are identical for all `jobs`.
inline constexpr int kQosEpisodeShards = 64;

/// Configuration of a Monte-Carlo QoS experiment.
struct QosSimulationConfig {
  PlaneGeometry geometry{};        ///< θ, Tc
  int k = 12;                      ///< active satellites in the plane
  ProtocolConfig protocol{};       ///< τ, δ, Tg, ν, TC-1 threshold, variant
  Rate mu = Rate::per_minute(0.5); ///< signal termination rate
  /// Overrides the Exp(µ) signal-duration law when set (sensitivity runs).
  std::shared_ptr<const DurationDistribution> duration_distribution;
  bool opportunity_adaptive = true;  ///< OAQ (true) or BAQ (false)
  int episodes = 20000;
  std::uint64_t seed = 1;
  /// Worker threads for the episode loop: 0 = auto (OAQ_JOBS env, else
  /// hardware concurrency), 1 = serial. Results are bit-identical for any
  /// value — episodes derive their random streams per-index.
  int jobs = 0;

  // --- Geometric mode (optional). When `constellation` is set, episodes
  // run against real orbital geometry (GeometricSchedule over `target`)
  // instead of the analytic timing diagram; `geometry`/`k` no longer
  // shape the pass pattern. Each shard owns a VisibilityCache, so the
  // Kepler-heavy pass extraction is paid per distinct (quantized) window
  // rather than per episode — and results stay bit-identical for any
  // `jobs` value because cached results are pure functions of the query.
  // Episode start times are jittered uniformly over one orbital period
  // (the PASTA phase randomization of the analytic mode). ---
  const Constellation* constellation = nullptr;
  GeoPoint target{};
  bool earth_rotation = false;
  /// Share one seed-then-frozen visibility cache across all shards (the
  /// common episode window is computed once per run instead of once per
  /// shard). `false` restores the shard-private VisibilityCache path —
  /// results are bit-identical either way (both caches quantize and
  /// compute windows identically); the knob exists for A/B benchmarking.
  bool shared_visibility = true;

  /// Export the DES ready-queue telemetry (`sim.queue.*` counters:
  /// run/merge/tombstone accounting) into `metrics`. Off by default: the
  /// golden metrics files predate these keys.
  bool queue_metrics = false;

  /// Advance analytic-mode episodes through the SoA batch engine
  /// (BatchEpisodeEngine, DESIGN.md §12): per-shard reusable DES contexts
  /// and closed-form escape retirement instead of per-episode
  /// construction. Results — counts, traces, metrics — are byte-identical
  /// to the scalar loop for any `jobs` value; the scalar path is retained
  /// as the oracle and still serves geometric mode (which has no
  /// closed-form escape test).
  bool batch_episodes = true;
  /// Armed lanes multiplexed over one episode-tagged event timeline per
  /// batch-engine group (DESIGN.md §15). 0 = the block width
  /// (kEpisodeBatchWidth, the default), 1 = the sequential drain
  /// (reset → drain one lane → reset), other values must lie in
  /// [1, kEpisodeBatchWidth]. Output bytes are identical at every width.
  /// Ignored unless `batch_episodes` applies.
  int interleave_width = 0;
  /// Export the batch engine's `sim.batch.*` occupancy counters into
  /// `metrics`. Off by default, like queue_metrics: the golden metrics
  /// files predate these keys.
  bool batch_metrics = false;

  /// Advance geometric-mode episodes through a per-shard pooled DES
  /// context (PooledEpisodeRunner): one Simulator/CrosslinkNetwork/
  /// TargetEpisode arena per shard, constructed on the shard's own thread
  /// and reset per episode, instead of per-episode construction over one
  /// growing slab. Results — counts, traces, metrics — are byte-identical
  /// to the scalar loop for any `jobs` value; the scalar path is retained
  /// as the oracle (bench/constellation_scale measures the gap).
  bool pooled_episodes = true;

  // --- Fault injection (ISSUE 5). ---
  /// Scripted degradation clauses replayed inside every episode (times
  /// relative to the signal start). Null = no injection. The injector
  /// draws from a dedicated per-episode fork, so attaching a plan never
  /// perturbs the protocol streams — QoS changes are caused by the
  /// faults, not by reshuffled randomness.
  const FaultPlan* fault_plan = nullptr;
  /// Run the InvariantChecker over every episode (I1–I8, see
  /// src/fault/invariants.hpp); violations surface in
  /// SimulatedQos::invariant_violations and — with `metrics` — as the
  /// `invariant.violations` counter.
  bool check_invariants = false;

  // --- Observability (all optional; null = disabled, zero overhead
  // beyond one branch per recording site). ---
  /// Collects per-episode protocol events into per-shard ring buffers.
  /// The JSONL export is bit-identical for any `jobs` value: a shard's
  /// stream depends only on its episode indices, and shards are exported
  /// in shard order.
  TraceCollector* trace = nullptr;
  /// Receives the merged run metrics (counters/stats over all episodes).
  /// Simulation-derived metrics are deterministic; `wall.*` entries are
  /// wall-clock and are not.
  MetricsRegistry* metrics = nullptr;
  /// Receives per-shard wall-time / queue-wait / merge profiling of the
  /// episode reduction. Purely observational — never affects results.
  ReduceProfile* profile = nullptr;
  /// Receives the hierarchical span tree of the run (src/obs/span.hpp):
  /// seed/freeze, per-shard prologue/drain, merge. The tree's structure,
  /// counts, and item tallies are bit-identical for any `jobs` value —
  /// only wall_ns varies. Exported as Chrome trace-event JSON by oaqctl
  /// --spans.
  SpanProfiler* spans = nullptr;
  /// Receives the merged per-episode attribution ledger: every final
  /// drop, retry, and fault activation keyed by episode id. Served by the
  /// scalar and batched analytic engines and the scalar geometric engine
  /// (the pooled geometric arena does not attribute; disable
  /// `pooled_episodes` to collect rows in geometric mode). Rows are
  /// additive counters folded shard-wise in shard order, so the ledger
  /// bytes are identical for any jobs value and any interleave width.
  EpisodeLedger* ledger = nullptr;
};

/// Aggregated outcome of a Monte-Carlo QoS experiment. Counters are 64-bit
/// so shard merges and long campaigns cannot overflow a narrow `long`.
struct SimulatedQos {
  DiscretePmf level_pmf;        ///< episode counts per QoS level
  std::int64_t episodes = 0;
  std::int64_t duplicates = 0;  ///< episodes with more than one alert
  std::int64_t unresolved = 0;  ///< episodes leaving a participant hanging
  std::int64_t untimely = 0;    ///< alerts sent after the deadline
  double mean_chain_length = 0.0;  ///< over detected episodes
  int max_chain_length = 0;
  /// Invariant-checker findings (0 unless check_invariants was set).
  std::int64_t invariant_violations = 0;
  std::vector<std::string> invariant_samples;  ///< capped descriptions

  [[nodiscard]] double probability(QosLevel level) const {
    return level_pmf.probability(to_int(level));
  }
  [[nodiscard]] double tail(QosLevel level) const {
    return level_pmf.tail_probability(to_int(level));
  }
};

/// Run the experiment. Signal phases are uniform over the revisit period
/// (PASTA); durations are Exp(µ).
[[nodiscard]] SimulatedQos simulate_qos(const QosSimulationConfig& config);

}  // namespace oaq
