// Multi-target campaign: concurrent signals contending for the
// constellation's computation and coordination resources.
//
// The paper evaluates one signal at a time. In operation, emitters appear
// as a Poisson stream and several coordinations can be in flight at once —
// a satellite asked to join two chains must serialize its geolocation
// computations. This engine runs all signals in ONE simulator over ONE
// crosslink network, with a FIFO per-satellite compute calendar, and
// reports the QoS distribution as a function of load
// (bench/ext_load_curve).
#pragma once

#include <memory>
#include <vector>

#include "common/distribution.hpp"
#include "common/stats.hpp"
#include "oaq/target_episode.hpp"

namespace oaq {

/// Campaign configuration.
struct CampaignConfig {
  PlaneGeometry geometry{};
  int k = 9;                          ///< plane capacity
  ProtocolConfig protocol{};
  Rate signal_arrival_rate = Rate::per_hour(6.0);  ///< Poisson arrivals
  /// Signal-duration law; Exp(0.2/min) when unset.
  std::shared_ptr<const DurationDistribution> duration_distribution;
  Duration horizon = Duration::hours(24);
  bool opportunity_adaptive = true;
  /// Serialize computations per satellite (contention on). When false,
  /// computations overlap freely — the single-target idealization.
  bool compute_contention = true;
  std::uint64_t seed = 1;
};

/// Aggregated campaign outcome.
struct CampaignResult {
  int signals = 0;
  DiscretePmf levels;
  int delivered = 0;
  int untimely = 0;
  int duplicates = 0;
  double mean_latency_min = 0.0;      ///< detection → first alert
  int contended_computations = 0;     ///< reservations that had to queue
  double mean_queueing_delay_s = 0.0; ///< over contended reservations

  [[nodiscard]] double probability(QosLevel level) const {
    return levels.probability(to_int(level));
  }
  [[nodiscard]] double tail(QosLevel level) const {
    return levels.tail_probability(to_int(level));
  }
};

/// Run a campaign: Poisson signal arrivals over `horizon`, every episode
/// in one shared simulation.
[[nodiscard]] CampaignResult run_campaign(const CampaignConfig& config);

}  // namespace oaq
