// Multi-target campaign: concurrent signals contending for the
// constellation's computation and coordination resources.
//
// The paper evaluates one signal at a time. In operation, emitters appear
// as a Poisson stream and several coordinations can be in flight at once —
// a satellite asked to join two chains must serialize its geolocation
// computations. This engine runs all signals in ONE simulator over ONE
// crosslink network, with a FIFO per-satellite compute calendar, and
// reports the QoS distribution as a function of load
// (bench/ext_load_curve).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/distribution.hpp"
#include "common/parallel.hpp"
#include "common/stats.hpp"
#include "oaq/target_episode.hpp"
#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"

namespace oaq {

/// Campaign configuration.
struct CampaignConfig {
  PlaneGeometry geometry{};
  int k = 9;                          ///< plane capacity
  ProtocolConfig protocol{};
  Rate signal_arrival_rate = Rate::per_hour(6.0);  ///< Poisson arrivals
  /// Signal-duration law; Exp(0.2/min) when unset.
  std::shared_ptr<const DurationDistribution> duration_distribution;
  Duration horizon = Duration::hours(24);
  bool opportunity_adaptive = true;
  /// Serialize computations per satellite (contention on). When false,
  /// computations overlap freely — the single-target idealization.
  bool compute_contention = true;
  std::uint64_t seed = 1;
  /// Independent campaign replications to aggregate. 1 reproduces the
  /// single-run behaviour for `seed` exactly; > 1 derives one child seed
  /// per replication and merges the results (tighter confidence
  /// intervals without lengthening the simulated horizon).
  int replications = 1;
  /// Worker threads across replications: 0 = auto (OAQ_JOBS env, else
  /// hardware), 1 = serial. Bit-identical results for any value.
  int jobs = 0;

  // --- Geometric mode (optional). When `constellation` is set, the
  // campaign runs against real orbital geometry over `target` instead of
  // the analytic plane. The visibility cache quantum is derived from the
  // horizon (one Kepler sweep covers every episode window of a
  // replication), and by default one seed-then-frozen cache is shared by
  // all replications. ---
  const Constellation* constellation = nullptr;
  GeoPoint target{};
  bool earth_rotation = false;
  /// Share one frozen visibility cache across replications instead of one
  /// private cache per replication. Results are bit-identical either way;
  /// the knob exists for A/B benchmarking (see montecarlo).
  bool shared_visibility = true;

  /// Export `sim.queue.*` DES ready-queue telemetry into `metrics` (off by
  /// default: the golden metrics files predate these keys).
  bool queue_metrics = false;

  /// Pre-screen analytic-mode arrivals with the closed-form escape test
  /// (analytic_signal_detected): a signal the pass pattern can never
  /// detect records kMissed without constructing its RNG stream and
  /// episode state machine. Byte-identical either way — arm() remains the
  /// authority for every signal that survives the screen.
  bool batch_episodes = true;

  // --- Fault injection (ISSUE 5). ---
  /// Scripted degradation clauses replayed once per replication, with
  /// clause times relative to the campaign origin (the replication's
  /// t = 0). Null = no injection. The injector draws from master.fork(6)
  /// — a stream no other campaign consumer forks — so attaching a plan
  /// never perturbs arrivals, durations, or protocol noise.
  const FaultPlan* fault_plan = nullptr;
  /// Audit every episode (and the DES ledger) with the InvariantChecker;
  /// findings surface in CampaignResult::invariant_violations and — with
  /// `metrics` — as the `invariant.violations` counter.
  bool check_invariants = false;

  // --- Observability (all optional; null = disabled). ---
  /// Protocol event streams, one shard per replication. Campaign episodes
  /// share one network, so network-level events carry episode = -1 while
  /// protocol-level events carry the target id.
  TraceCollector* trace = nullptr;
  /// Receives the merged campaign metrics (deterministic; see montecarlo).
  MetricsRegistry* metrics = nullptr;
  /// Per-replication wall-time profile of the replication fan-out.
  ReduceProfile* profile = nullptr;
  /// Receives the hierarchical span tree (one arena per replication plus
  /// the calling thread's seed/freeze/merge work). Structure and counts
  /// are bit-identical for any `jobs` value; only wall_ns varies.
  SpanProfiler* spans = nullptr;
  /// Receives the merged per-target attribution ledger: every final drop,
  /// retry, and fault activation keyed by the owning target id (global row
  /// for episode-less traffic such as campaign-wide fault clauses). Also
  /// enabled implicitly by check_invariants, which audits I7 against it.
  EpisodeLedger* ledger = nullptr;
  /// Stamp xlink_* trace events with the owning target id instead of the
  /// campaign-wide -1. Off by default — the golden campaign trace pins the
  /// -1 bytes; `oaqctl campaign` turns it on so trace-summary can
  /// attribute drops per target.
  bool episode_attribution = false;
};

/// Aggregated campaign outcome (over all replications). Counters are
/// 64-bit so replicated campaigns cannot overflow.
struct CampaignResult {
  std::int64_t signals = 0;
  DiscretePmf levels;
  std::int64_t delivered = 0;
  std::int64_t untimely = 0;
  std::int64_t duplicates = 0;
  int replications = 1;
  /// Detection → first alert, minutes, over delivered alerts; `.mean()` is
  /// the headline latency, `.ci95_halfwidth()` its confidence interval.
  RunningStat latency_min;
  double mean_latency_min = 0.0;      ///< == latency_min.mean()
  std::int64_t contended_computations = 0;  ///< reservations that queued
  double mean_queueing_delay_s = 0.0; ///< over contended reservations
  /// Invariant-checker findings (0 unless check_invariants was set).
  std::int64_t invariant_violations = 0;
  std::vector<std::string> invariant_samples;  ///< capped descriptions

  [[nodiscard]] double probability(QosLevel level) const {
    return levels.probability(to_int(level));
  }
  [[nodiscard]] double tail(QosLevel level) const {
    return levels.tail_probability(to_int(level));
  }
};

/// Run a campaign: Poisson signal arrivals over `horizon`, every episode
/// in one shared simulation.
[[nodiscard]] CampaignResult run_campaign(const CampaignConfig& config);

}  // namespace oaq
