#include "common/matrix.hpp"

#include <cmath>

namespace oaq {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = init.size();
  cols_ = rows_ ? init.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    OAQ_REQUIRE(row.size() == cols_, "ragged matrix initializer");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::diagonal(const std::vector<double>& d) {
  Matrix m(d.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
  return m;
}

Matrix Matrix::column(const std::vector<double>& v) {
  Matrix m(v.size(), 1);
  for (std::size_t i = 0; i < v.size(); ++i) m(i, 0) = v[i];
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix& Matrix::operator+=(const Matrix& o) {
  OAQ_REQUIRE(rows_ == o.rows_ && cols_ == o.cols_, "shape mismatch in +=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& o) {
  OAQ_REQUIRE(rows_ == o.rows_ && cols_ == o.cols_, "shape mismatch in -=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double k) {
  for (auto& x : data_) x *= k;
  return *this;
}

Matrix operator*(const Matrix& a, const Matrix& b) {
  OAQ_REQUIRE(a.cols_ == b.rows_, "shape mismatch in matrix product");
  Matrix out(a.rows_, b.cols_);
  for (std::size_t r = 0; r < a.rows_; ++r) {
    for (std::size_t k = 0; k < a.cols_; ++k) {
      const double aik = a.data_[r * a.cols_ + k];
      if (aik == 0.0) continue;
      for (std::size_t c = 0; c < b.cols_; ++c) {
        out.data_[r * b.cols_ + c] += aik * b.data_[k * b.cols_ + c];
      }
    }
  }
  return out;
}

double Matrix::norm() const {
  double s = 0.0;
  for (double x : data_) s += x * x;
  return std::sqrt(s);
}

Matrix Matrix::solve(const Matrix& b) const {
  OAQ_REQUIRE(rows_ == cols_, "solve needs a square matrix");
  OAQ_REQUIRE(b.rows_ == rows_, "RHS row count mismatch");
  const std::size_t n = rows_;
  Matrix lu = *this;
  Matrix x = b;
  std::vector<std::size_t> piv(n);
  for (std::size_t i = 0; i < n; ++i) piv[i] = i;

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t best = col;
    double best_abs = std::abs(lu(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double a = std::abs(lu(r, col));
      if (a > best_abs) {
        best = r;
        best_abs = a;
      }
    }
    OAQ_ENSURE(best_abs > 1e-300, "singular matrix in solve()");
    if (best != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(lu(col, c), lu(best, c));
      for (std::size_t c = 0; c < x.cols(); ++c) std::swap(x(col, c), x(best, c));
    }
    const double pivot = lu(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = lu(r, col) / pivot;
      if (factor == 0.0) continue;
      lu(r, col) = 0.0;
      for (std::size_t c = col + 1; c < n; ++c) lu(r, c) -= factor * lu(col, c);
      for (std::size_t c = 0; c < x.cols(); ++c) x(r, c) -= factor * x(col, c);
    }
  }
  // Back substitution.
  for (std::size_t rc = 0; rc < x.cols(); ++rc) {
    for (std::size_t ri = n; ri-- > 0;) {
      double sum = x(ri, rc);
      for (std::size_t c = ri + 1; c < n; ++c) sum -= lu(ri, c) * x(c, rc);
      x(ri, rc) = sum / lu(ri, ri);
    }
  }
  return x;
}

Matrix Matrix::inverse() const { return solve(identity(rows_)); }

Matrix Matrix::cholesky() const {
  OAQ_REQUIRE(rows_ == cols_, "cholesky needs a square matrix");
  const std::size_t n = rows_;
  Matrix L(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = (*this)(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= L(i, k) * L(j, k);
      if (i == j) {
        OAQ_ENSURE(sum > 0.0, "matrix not positive definite in cholesky()");
        L(i, i) = std::sqrt(sum);
      } else {
        L(i, j) = sum / L(j, j);
      }
    }
  }
  return L;
}

Matrix Matrix::solve_spd(const Matrix& b) const {
  OAQ_REQUIRE(b.rows_ == rows_, "RHS row count mismatch");
  const Matrix L = cholesky();
  const std::size_t n = rows_;
  Matrix x = b;
  // Forward substitution L·y = b.
  for (std::size_t rc = 0; rc < x.cols(); ++rc) {
    for (std::size_t i = 0; i < n; ++i) {
      double sum = x(i, rc);
      for (std::size_t k = 0; k < i; ++k) sum -= L(i, k) * x(k, rc);
      x(i, rc) = sum / L(i, i);
    }
    // Back substitution Lᵀ·x = y.
    for (std::size_t ii = n; ii-- > 0;) {
      double sum = x(ii, rc);
      for (std::size_t k = ii + 1; k < n; ++k) sum -= L(k, ii) * x(k, rc);
      x(ii, rc) = sum / L(ii, ii);
    }
  }
  return x;
}

double vector_norm(const Matrix& v) {
  OAQ_REQUIRE(v.cols() == 1, "vector_norm expects a column vector");
  return v.norm();
}

}  // namespace oaq
