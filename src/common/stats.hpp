// Streaming statistics for Monte-Carlo experiments.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/error.hpp"

namespace oaq {

/// Welford streaming mean/variance plus extrema.
class RunningStat {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_ || n_ == 1) min_ = x;
    if (x > max_ || n_ == 1) max_ = x;
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const;
  /// Standard error of the mean.
  [[nodiscard]] double sem() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

  /// Half-width of the ~95% normal confidence interval on the mean.
  [[nodiscard]] double ci95_halfwidth() const;

  /// Folds another stream in (Chan et al. parallel Welford combination):
  /// the merged stat matches a one-pass stream over both inputs to
  /// floating-point combination accuracy, and extrema/counts exactly.
  void merge(const RunningStat& other);

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Estimate of a probability from Bernoulli trials, with a Wilson interval.
class ProportionEstimate {
 public:
  void add(bool success) {
    ++n_;
    if (success) ++successes_;
  }

  [[nodiscard]] std::uint64_t trials() const { return n_; }
  [[nodiscard]] std::uint64_t successes() const { return successes_; }
  [[nodiscard]] double value() const {
    return n_ ? static_cast<double>(successes_) / static_cast<double>(n_) : 0.0;
  }
  /// Wilson score interval at ~95% confidence: {lower, upper}.
  [[nodiscard]] std::pair<double, double> wilson95() const;

  /// Adds another estimate's trials in; exact.
  void merge(const ProportionEstimate& other) {
    n_ += other.n_;
    successes_ += other.successes_;
  }

 private:
  std::uint64_t n_ = 0;
  std::uint64_t successes_ = 0;
};

/// Fixed-width histogram over [lo, hi); samples outside are clamped into the
/// first/last bins and counted separately.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t bin) const;
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] double bin_lo(std::size_t bin) const;
  [[nodiscard]] double bin_hi(std::size_t bin) const;
  /// Empirical quantile in [0,1] by linear interpolation within bins.
  [[nodiscard]] double quantile(double q) const;

  /// Adds another histogram's counts in; exact. Both histograms must share
  /// the same [lo, hi) range and bin count.
  void merge(const Histogram& other);

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
};

/// Discrete empirical pmf over integer outcomes (e.g. QoS levels, capacity k).
class DiscretePmf {
 public:
  void add(int outcome, double weight = 1.0) {
    weights_[outcome] += weight;
    total_ += weight;
  }

  [[nodiscard]] double probability(int outcome) const;
  /// P(outcome >= x).
  [[nodiscard]] double tail_probability(int x) const;
  [[nodiscard]] double total_weight() const { return total_; }
  [[nodiscard]] const std::map<int, double>& weights() const { return weights_; }

  /// Adds another pmf's weights in. Integer-valued weights (episode counts)
  /// merge exactly regardless of how samples were grouped.
  void merge(const DiscretePmf& other) {
    for (const auto& [outcome, weight] : other.weights_) {
      weights_[outcome] += weight;
    }
    total_ += other.total_;
  }

 private:
  std::map<int, double> weights_;
  double total_ = 0.0;
};

}  // namespace oaq
