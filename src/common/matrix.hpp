// Small dense linear algebra for estimation.
//
// The geolocation estimators (src/geoloc) solve weighted least-squares
// normal equations with a handful of parameters; a compact row-major dynamic
// matrix with Cholesky/LU solvers is all that is needed. Not intended for
// large systems.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "common/error.hpp"

namespace oaq {

/// Row-major dynamic dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;

  /// rows×cols matrix filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Construct from nested initializer lists: Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  [[nodiscard]] static Matrix identity(std::size_t n);
  /// Diagonal matrix from a vector of diagonal entries.
  [[nodiscard]] static Matrix diagonal(const std::vector<double>& d);
  /// Column vector from entries.
  [[nodiscard]] static Matrix column(const std::vector<double>& v);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) {
    OAQ_REQUIRE(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const {
    OAQ_REQUIRE(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }

  [[nodiscard]] Matrix transposed() const;

  Matrix& operator+=(const Matrix& o);
  Matrix& operator-=(const Matrix& o);
  Matrix& operator*=(double k);

  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, double k) { return a *= k; }
  friend Matrix operator*(double k, Matrix a) { return a *= k; }
  friend Matrix operator*(const Matrix& a, const Matrix& b);

  /// Frobenius norm.
  [[nodiscard]] double norm() const;

  /// Solve A·x = b by LU with partial pivoting; A must be square and
  /// nonsingular, b a column vector (or multi-column RHS).
  [[nodiscard]] Matrix solve(const Matrix& b) const;

  /// Inverse via LU; square nonsingular matrices only.
  [[nodiscard]] Matrix inverse() const;

  /// Solve A·x = b with A symmetric positive definite, via Cholesky.
  /// Throws InvariantError if A is not SPD (within pivot tolerance).
  [[nodiscard]] Matrix solve_spd(const Matrix& b) const;

  /// Lower Cholesky factor L with A = L·Lᵀ; requires SPD.
  [[nodiscard]] Matrix cholesky() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Euclidean norm of a column vector.
[[nodiscard]] double vector_norm(const Matrix& v);

}  // namespace oaq
