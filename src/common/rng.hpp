// Deterministic pseudo-random number generation for simulation.
//
// We hand-roll xoshiro256++ (Blackman & Vigna) rather than use <random>
// engines so that simulation results are bit-reproducible across standard
// library implementations — a requirement for regression-testing Monte-Carlo
// experiments. Distribution sampling (exponential, normal, Poisson) is also
// implemented here for the same reason.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>

#include "common/error.hpp"
#include "common/units.hpp"

namespace oaq {

/// SplitMix64: used to expand a user seed into xoshiro state and to derive
/// independent child streams.
[[nodiscard]] constexpr std::uint64_t splitmix64_next(std::uint64_t& state) {
  state += 0x9E3779B97f4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// xoshiro256++ generator with distribution sampling.
///
/// Each logical random process in a simulation (failures, signal arrivals,
/// computation times, message delays, ...) should own its own `Rng`, derived
/// via `fork(tag)`, so that changing how one process consumes randomness does
/// not perturb the others (common random numbers across experiments).
class Rng {
 public:
  /// Seeds the generator deterministically from `seed`.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    std::uint64_t sm = seed;
    for (auto& s : state_) s = splitmix64_next(sm);
    // Avoid the all-zero state (probability ~2^-256, but cheap to rule out).
    if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
  }

  /// Next raw 64-bit output.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform01() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    OAQ_REQUIRE(lo <= hi, "uniform bounds out of order");
    return lo + (hi - lo) * uniform01();
  }

  /// Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n) {
    OAQ_REQUIRE(n > 0, "uniform_index needs n > 0");
    // Lemire's nearly-divisionless bounded sampling.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  bool bernoulli(double p) { return uniform01() < p; }

  /// Exponential variate with the given rate (mean 1/rate).
  double exponential(double rate) {
    OAQ_REQUIRE(rate > 0.0, "exponential rate must be positive");
    // 1 - uniform01() is in (0, 1], so the log is finite.
    return -std::log(1.0 - uniform01()) / rate;
  }

  /// Exponential waiting time for a process with strong-typed `rate`.
  Duration exponential(Rate rate) {
    return Duration::seconds(exponential(rate.per_second_value()));
  }

  /// Uniform Duration in [lo, hi).
  Duration uniform(Duration lo, Duration hi) {
    return Duration::seconds(uniform(lo.to_seconds(), hi.to_seconds()));
  }

  /// Standard normal via Box–Muller (cached spare deviate).
  double normal() {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u1 = 1.0 - uniform01();
    double u2 = uniform01();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * kPi * u2;
    spare_ = r * std::sin(theta);
    has_spare_ = true;
    return r * std::cos(theta);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Poisson variate; Knuth for small means, normal approximation above 64.
  std::uint64_t poisson(double mean) {
    OAQ_REQUIRE(mean >= 0.0, "poisson mean must be nonnegative");
    if (mean == 0.0) return 0;
    if (mean > 64.0) {
      double x = normal(mean, std::sqrt(mean));
      return x < 0.5 ? 0 : static_cast<std::uint64_t>(x + 0.5);
    }
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform01();
    } while (p > limit);
    return k - 1;
  }

  /// Derives an independent child stream; `tag` distinguishes siblings.
  /// Const (reads the state without advancing it), so shards may fork
  /// per-item streams from one shared parent concurrently.
  [[nodiscard]] Rng fork(std::uint64_t tag) const {
    std::uint64_t sm = state_[0] ^ (tag * 0xD1B54A32D192ED03ull) ^ state_[2];
    Rng child(splitmix64_next(sm));
    return child;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace oaq
