#include "common/distribution.hpp"

#include <cmath>

#include "common/error.hpp"

namespace oaq {

ExponentialDuration::ExponentialDuration(Rate rate) : rate_(rate) {
  OAQ_REQUIRE(rate > Rate::zero(), "rate must be positive");
}

double ExponentialDuration::survival(Duration t) const {
  if (t <= Duration::zero()) return 1.0;
  return std::exp(-(rate_ * t));
}

Duration ExponentialDuration::mean() const { return rate_.mean_interval(); }

Duration ExponentialDuration::sample(Rng& rng) const {
  return rng.exponential(rate_);
}

DeterministicDuration::DeterministicDuration(Duration value) : value_(value) {
  OAQ_REQUIRE(value > Duration::zero(), "duration must be positive");
}

double DeterministicDuration::survival(Duration t) const {
  return t < value_ ? 1.0 : 0.0;
}

Duration DeterministicDuration::mean() const { return value_; }

Duration DeterministicDuration::sample(Rng&) const { return value_; }

WeibullDuration::WeibullDuration(double shape, Duration scale)
    : shape_(shape), scale_(scale) {
  OAQ_REQUIRE(shape > 0.0, "shape must be positive");
  OAQ_REQUIRE(scale > Duration::zero(), "scale must be positive");
}

WeibullDuration WeibullDuration::with_mean(double shape, Duration mean) {
  OAQ_REQUIRE(shape > 0.0, "shape must be positive");
  OAQ_REQUIRE(mean > Duration::zero(), "mean must be positive");
  // mean = scale · Γ(1 + 1/shape).
  const double gamma = std::exp(log_gamma(1.0 + 1.0 / shape));
  return WeibullDuration(shape, mean / gamma);
}

double WeibullDuration::survival(Duration t) const {
  if (t <= Duration::zero()) return 1.0;
  return std::exp(-std::pow(t / scale_, shape_));
}

Duration WeibullDuration::mean() const {
  return scale_ * std::exp(log_gamma(1.0 + 1.0 / shape_));
}

Duration WeibullDuration::sample(Rng& rng) const {
  // Inverse transform: X = scale · (−ln U)^{1/k}.
  const double u = 1.0 - rng.uniform01();  // in (0, 1]
  return scale_ * std::pow(-std::log(u), 1.0 / shape_);
}

UniformDuration::UniformDuration(Duration lo, Duration hi)
    : lo_(lo), hi_(hi) {
  OAQ_REQUIRE(lo >= Duration::zero(), "lower bound must be nonnegative");
  OAQ_REQUIRE(hi > lo, "upper bound must exceed lower bound");
}

double UniformDuration::survival(Duration t) const {
  if (t <= lo_) return 1.0;
  if (t >= hi_) return 0.0;
  return (hi_ - t) / (hi_ - lo_);
}

Duration UniformDuration::mean() const { return (lo_ + hi_) / 2.0; }

Duration UniformDuration::sample(Rng& rng) const {
  return rng.uniform(lo_, hi_);
}

double log_gamma(double x) {
  // Lanczos approximation (g = 7, n = 9), |error| < 1e-13 for x > 0.
  static const double kCoefficients[9] = {
      0.99999999999980993,  676.5203681218851,   -1259.1392167224028,
      771.32342877765313,   -176.61502916214059, 12.507343278686905,
      -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};
  OAQ_REQUIRE(x > 0.0, "log_gamma requires x > 0");
  if (x < 0.5) {
    // Reflection formula.
    return std::log(kPi / std::sin(kPi * x)) - log_gamma(1.0 - x);
  }
  const double z = x - 1.0;
  double sum = kCoefficients[0];
  for (int i = 1; i < 9; ++i) sum += kCoefficients[i] / (z + i);
  const double t = z + 7.5;
  return 0.5 * std::log(2.0 * kPi) + (z + 0.5) * std::log(t) - t +
         std::log(sum);
}

}  // namespace oaq
