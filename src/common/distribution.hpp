// Probability distributions over durations.
//
// The paper assumes exponential signal durations and computation times
// "in order to allow the amount of time required for result convergence
// to be nondeterministic" (§4.2.2). This abstraction lets both the
// closed-form QoS model and the Monte-Carlo harness swap that assumption
// for deterministic, Weibull or uniform laws — the sensitivity ablation
// in bench/ext_distribution_sensitivity.
#pragma once

#include <memory>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace oaq {

/// A nonnegative continuous distribution over time spans.
class DurationDistribution {
 public:
  virtual ~DurationDistribution() = default;

  /// P(X > t).
  [[nodiscard]] virtual double survival(Duration t) const = 0;
  /// P(X <= t).
  [[nodiscard]] double cdf(Duration t) const { return 1.0 - survival(t); }
  [[nodiscard]] virtual Duration mean() const = 0;
  [[nodiscard]] virtual Duration sample(Rng& rng) const = 0;
};

/// Exp(rate): the paper's default for µ and ν.
class ExponentialDuration final : public DurationDistribution {
 public:
  explicit ExponentialDuration(Rate rate);
  [[nodiscard]] double survival(Duration t) const override;
  [[nodiscard]] Duration mean() const override;
  [[nodiscard]] Duration sample(Rng& rng) const override;
  [[nodiscard]] Rate rate() const { return rate_; }

 private:
  Rate rate_;
};

/// A point mass at `value` (e.g. fixed-length transmissions).
class DeterministicDuration final : public DurationDistribution {
 public:
  explicit DeterministicDuration(Duration value);
  [[nodiscard]] double survival(Duration t) const override;
  [[nodiscard]] Duration mean() const override;
  [[nodiscard]] Duration sample(Rng& rng) const override;

 private:
  Duration value_;
};

/// Weibull(shape k, scale λ): k < 1 bursty/heavy-tailed, k > 1 ageing.
class WeibullDuration final : public DurationDistribution {
 public:
  WeibullDuration(double shape, Duration scale);
  /// Weibull with the given shape, parameterized by its MEAN instead of
  /// the scale (convenient for like-for-like sensitivity sweeps).
  [[nodiscard]] static WeibullDuration with_mean(double shape, Duration mean);
  [[nodiscard]] double survival(Duration t) const override;
  [[nodiscard]] Duration mean() const override;
  [[nodiscard]] Duration sample(Rng& rng) const override;

 private:
  double shape_;
  Duration scale_;
};

/// Uniform on [lo, hi].
class UniformDuration final : public DurationDistribution {
 public:
  UniformDuration(Duration lo, Duration hi);
  [[nodiscard]] double survival(Duration t) const override;
  [[nodiscard]] Duration mean() const override;
  [[nodiscard]] Duration sample(Rng& rng) const override;

 private:
  Duration lo_;
  Duration hi_;
};

/// ln Γ(x) for the Weibull mean (Lanczos approximation).
[[nodiscard]] double log_gamma(double x);

}  // namespace oaq
