// Numerical analysis kernels: quadrature, root finding, grids.
//
// The analytic QoS model (src/analytic) integrates products of exponentials
// over piecewise-defined opportunity windows; adaptive Simpson quadrature is
// accurate and fast for those smooth integrands, and Gauss–Legendre provides
// an independent cross-check used in tests.
#pragma once

#include <functional>
#include <vector>

namespace oaq {

/// Integrand type used by the quadrature routines.
using Integrand = std::function<double(double)>;

/// Adaptive Simpson quadrature of `f` over [a, b] to absolute tolerance `tol`.
///
/// Handles a >= b by returning a signed/zero result. Recursion depth is
/// bounded; worst case degrades to the composite estimate rather than looping.
[[nodiscard]] double integrate(const Integrand& f, double a, double b,
                               double tol = 1e-10);

/// Fixed-order Gauss–Legendre quadrature (order n in {4, 8, 16, 32, 64}).
[[nodiscard]] double integrate_gauss(const Integrand& f, double a, double b,
                                     int order = 32);

/// Brent's method root find of `f` on a bracketing interval [a, b].
/// Requires f(a) and f(b) to have opposite signs.
[[nodiscard]] double find_root(const Integrand& f, double a, double b,
                               double tol = 1e-12);

/// `n` evenly spaced points from `lo` to `hi` inclusive (n >= 2).
[[nodiscard]] std::vector<double> linspace(double lo, double hi, int n);

/// `n` logarithmically spaced points from `lo` to `hi` inclusive (n >= 2,
/// lo, hi > 0).
[[nodiscard]] std::vector<double> logspace(double lo, double hi, int n);

/// True when |a - b| <= atol + rtol * max(|a|, |b|).
[[nodiscard]] bool approx_equal(double a, double b, double rtol = 1e-9,
                                double atol = 1e-12);

}  // namespace oaq
