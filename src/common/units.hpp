// Strong unit types for time and rates.
//
// The paper mixes units freely: protocol quantities (τ, δ, Tg, Tc, Tr, µ, ν)
// are in minutes, dependability quantities (λ, φ, launch lead times) are in
// hours. A strong Duration/Rate pair makes unit mixups a compile- or
// construction-time error instead of a silently wrong figure.
#pragma once

#include <cmath>
#include <compare>
#include <limits>
#include <ostream>

namespace oaq {

/// A span of simulated time. Internally stored in seconds.
///
/// Construction is explicit via named factories so call sites always state
/// the unit: `Duration::minutes(9)`, `Duration::hours(30000)`.
class Duration {
 public:
  constexpr Duration() = default;

  [[nodiscard]] static constexpr Duration seconds(double s) { return Duration(s); }
  [[nodiscard]] static constexpr Duration minutes(double m) { return Duration(m * 60.0); }
  [[nodiscard]] static constexpr Duration hours(double h) { return Duration(h * 3600.0); }
  [[nodiscard]] static constexpr Duration days(double d) { return Duration(d * 86400.0); }
  [[nodiscard]] static constexpr Duration zero() { return Duration(0.0); }
  [[nodiscard]] static constexpr Duration infinity() {
    return Duration(std::numeric_limits<double>::infinity());
  }

  [[nodiscard]] constexpr double to_seconds() const { return secs_; }
  [[nodiscard]] constexpr double to_minutes() const { return secs_ / 60.0; }
  [[nodiscard]] constexpr double to_hours() const { return secs_ / 3600.0; }
  [[nodiscard]] constexpr double to_days() const { return secs_ / 86400.0; }

  [[nodiscard]] constexpr bool is_finite() const { return std::isfinite(secs_); }

  constexpr Duration& operator+=(Duration o) { secs_ += o.secs_; return *this; }
  constexpr Duration& operator-=(Duration o) { secs_ -= o.secs_; return *this; }
  constexpr Duration& operator*=(double k) { secs_ *= k; return *this; }
  constexpr Duration& operator/=(double k) { secs_ /= k; return *this; }

  friend constexpr Duration operator+(Duration a, Duration b) { return Duration(a.secs_ + b.secs_); }
  friend constexpr Duration operator-(Duration a, Duration b) { return Duration(a.secs_ - b.secs_); }
  friend constexpr Duration operator*(Duration a, double k) { return Duration(a.secs_ * k); }
  friend constexpr Duration operator*(double k, Duration a) { return Duration(a.secs_ * k); }
  friend constexpr Duration operator/(Duration a, double k) { return Duration(a.secs_ / k); }
  /// Ratio of two durations (dimensionless).
  friend constexpr double operator/(Duration a, Duration b) { return a.secs_ / b.secs_; }

  friend constexpr auto operator<=>(Duration a, Duration b) = default;

  friend std::ostream& operator<<(std::ostream& os, Duration d) {
    return os << d.to_minutes() << " min";
  }

 private:
  explicit constexpr Duration(double secs) : secs_(secs) {}
  double secs_ = 0.0;
};

/// An event rate (occurrences per unit time). Internally per second.
///
/// λ, µ and ν in the paper are rates; `Rate::per_hour(1e-5)` is the paper's
/// λ = 10⁻⁵/hr, `Rate::per_minute(0.5)` is µ = 0.5/min.
class Rate {
 public:
  constexpr Rate() = default;

  [[nodiscard]] static constexpr Rate per_second(double r) { return Rate(r); }
  [[nodiscard]] static constexpr Rate per_minute(double r) { return Rate(r / 60.0); }
  [[nodiscard]] static constexpr Rate per_hour(double r) { return Rate(r / 3600.0); }
  [[nodiscard]] static constexpr Rate zero() { return Rate(0.0); }

  [[nodiscard]] constexpr double per_second_value() const { return rps_; }
  [[nodiscard]] constexpr double per_minute_value() const { return rps_ * 60.0; }
  [[nodiscard]] constexpr double per_hour_value() const { return rps_ * 3600.0; }

  /// Mean interarrival time of a Poisson process with this rate.
  [[nodiscard]] constexpr Duration mean_interval() const {
    return Duration::seconds(1.0 / rps_);
  }

  /// Expected event count over `d`: the dimensionless product rate·time.
  friend constexpr double operator*(Rate r, Duration d) { return r.rps_ * d.to_seconds(); }
  friend constexpr double operator*(Duration d, Rate r) { return r * d; }
  friend constexpr Rate operator*(Rate r, double k) { return Rate(r.rps_ * k); }
  friend constexpr Rate operator*(double k, Rate r) { return Rate(r.rps_ * k); }
  friend constexpr Rate operator+(Rate a, Rate b) { return Rate(a.rps_ + b.rps_); }

  friend constexpr auto operator<=>(Rate a, Rate b) = default;

 private:
  explicit constexpr Rate(double rps) : rps_(rps) {}
  double rps_ = 0.0;
};

/// An absolute simulation time (epoch-anchored), distinct from Duration.
class TimePoint {
 public:
  constexpr TimePoint() = default;
  [[nodiscard]] static constexpr TimePoint origin() { return TimePoint(); }
  [[nodiscard]] static constexpr TimePoint at(Duration since_origin) {
    return TimePoint(since_origin);
  }

  [[nodiscard]] constexpr Duration since_origin() const { return d_; }

  friend constexpr TimePoint operator+(TimePoint t, Duration d) { return TimePoint(t.d_ + d); }
  friend constexpr TimePoint operator-(TimePoint t, Duration d) { return TimePoint(t.d_ - d); }
  friend constexpr Duration operator-(TimePoint a, TimePoint b) { return a.d_ - b.d_; }

  friend constexpr auto operator<=>(TimePoint a, TimePoint b) = default;

  friend std::ostream& operator<<(std::ostream& os, TimePoint t) {
    return os << "t+" << t.d_.to_minutes() << "min";
  }

 private:
  explicit constexpr TimePoint(Duration d) : d_(d) {}
  Duration d_{};
};

// --- Angles -----------------------------------------------------------------
// Angles are plain doubles in radians throughout; these helpers keep the
// degree↔radian conversions readable at call sites.

inline constexpr double kPi = 3.14159265358979323846;

[[nodiscard]] constexpr double deg2rad(double deg) { return deg * kPi / 180.0; }
[[nodiscard]] constexpr double rad2deg(double rad) { return rad * 180.0 / kPi; }

/// Wrap an angle into [0, 2π).
[[nodiscard]] inline double wrap_two_pi(double a) {
  a = std::fmod(a, 2.0 * kPi);
  return a < 0.0 ? a + 2.0 * kPi : a;
}

/// Wrap an angle into (−π, π].
[[nodiscard]] inline double wrap_pi(double a) {
  a = wrap_two_pi(a);
  return a > kPi ? a - 2.0 * kPi : a;
}

}  // namespace oaq
