// Small-buffer-optimized callable wrapper for hot paths.
//
// The DES kernel schedules millions of short-lived callbacks per campaign;
// std::function heap-allocates every capture larger than two pointers, which
// made per-event allocation the dominant Monte-Carlo cost (ISSUE 3). A
// SmallFunction stores callables up to `InlineBytes` in place — sized so
// every protocol callback (this + a Pass + a TimePoint and change) fits —
// and falls back to the heap only for oversized captures. Move-only, so
// captured state is never duplicated.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace oaq {

template <typename Signature, std::size_t InlineBytes = 64>
class SmallFunction;  // primary template left undefined

template <typename R, typename... Args, std::size_t InlineBytes>
class SmallFunction<R(Args...), InlineBytes> {
 public:
  SmallFunction() noexcept = default;
  SmallFunction(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-*)

  /// Wraps any callable invocable as R(Args...). Callables that fit the
  /// inline buffer (and are nothrow-movable, so buffer-to-buffer moves
  /// cannot throw mid-transfer) are stored in place; others on the heap.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  SmallFunction(F&& f) {  // NOLINT(google-explicit-*)
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(buffer_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      ::new (static_cast<void*>(buffer_))
          Fn*(new Fn(std::forward<F>(f)));
      ops_ = &heap_ops<Fn>;
    }
  }

  SmallFunction(SmallFunction&& other) noexcept { move_from(other); }

  SmallFunction& operator=(SmallFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  SmallFunction& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  SmallFunction(const SmallFunction&) = delete;
  SmallFunction& operator=(const SmallFunction&) = delete;

  ~SmallFunction() { reset(); }

  R operator()(Args... args) {
    return ops_->invoke(buffer_, std::forward<Args>(args)...);
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }
  friend bool operator==(const SmallFunction& f, std::nullptr_t) noexcept {
    return f.ops_ == nullptr;
  }
  friend bool operator!=(const SmallFunction& f, std::nullptr_t) noexcept {
    return f.ops_ != nullptr;
  }

  /// True when the held callable lives in the inline buffer (diagnostic;
  /// the allocation-counter bench asserts the kernel's callbacks qualify).
  [[nodiscard]] bool is_inline() const noexcept {
    return ops_ != nullptr && ops_->inline_storage;
  }

 private:
  struct Ops {
    R (*invoke)(void* buf, Args&&... args);
    void (*move)(void* dst, void* src) noexcept;
    void (*destroy)(void* buf) noexcept;
    bool inline_storage;
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= InlineBytes &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static constexpr Ops inline_ops = {
      [](void* buf, Args&&... args) -> R {
        return (*std::launder(reinterpret_cast<Fn*>(buf)))(
            std::forward<Args>(args)...);
      },
      [](void* dst, void* src) noexcept {
        Fn* from = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      [](void* buf) noexcept {
        std::launder(reinterpret_cast<Fn*>(buf))->~Fn();
      },
      /*inline_storage=*/true,
  };

  template <typename Fn>
  static constexpr Ops heap_ops = {
      [](void* buf, Args&&... args) -> R {
        return (**std::launder(reinterpret_cast<Fn**>(buf)))(
            std::forward<Args>(args)...);
      },
      [](void* dst, void* src) noexcept {
        std::memcpy(dst, src, sizeof(Fn*));  // steal the owning pointer
      },
      [](void* buf) noexcept {
        delete *std::launder(reinterpret_cast<Fn**>(buf));
      },
      /*inline_storage=*/false,
  };

  void move_from(SmallFunction& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->move(buffer_, other.buffer_);
      other.ops_ = nullptr;
    }
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buffer_);
      ops_ = nullptr;
    }
  }

  static_assert(InlineBytes >= sizeof(void*), "buffer must hold a pointer");
  alignas(std::max_align_t) unsigned char buffer_[InlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace oaq
