// Fixed-size thread pool and deterministic parallel reduction.
//
// The Monte-Carlo harnesses (oaq/montecarlo, oaq/campaign) and every sweep
// bench built on them fan work out through `parallel_reduce`. The contract
// that makes this safe for regression-tested simulations:
//
//   * The shard decomposition depends only on (n_items, n_shards), never on
//     the worker count, and shard results are merged sequentially in shard
//     order on the calling thread. A caller whose per-item computation is
//     order-independent (e.g. per-episode RNG streams derived by
//     `Rng::fork(item)`) therefore gets BIT-IDENTICAL results for any
//     `jobs` value — threads only change which worker computes a shard.
//   * `jobs == 1` never touches the pool: the map/merge loop runs inline on
//     the calling thread, exactly the pre-parallel serial path.
//
// Worker count resolution (`resolve_jobs`): an explicit positive request
// wins; otherwise the OAQ_JOBS environment variable; otherwise hardware
// concurrency. The shared pool is lazily created and lives for the process.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <optional>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace oaq {

/// Detected hardware concurrency, at least 1.
[[nodiscard]] int hardware_jobs();

/// OAQ_JOBS environment override clamped to [1, 1024]; 0 when unset/invalid.
[[nodiscard]] int env_jobs();

/// Worker count for a run: `requested` if positive, else OAQ_JOBS, else
/// hardware concurrency.
[[nodiscard]] int resolve_jobs(int requested);

/// Fixed-size worker pool. Construction spawns the workers; destruction
/// drains the queue and joins them. Tasks must not block on other queued
/// tasks (shard pulling below never does).
class ThreadPool {
 public:
  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueue a task for any worker. Fire-and-forget; use `for_each_shard`
  /// when completion matters.
  void submit(std::function<void()> task);

  /// Run `shard_fn(s)` for every s in [0, n_shards) using at most `jobs`
  /// concurrent executors (the caller participates as one of them) and
  /// block until all shards completed. The first exception thrown by a
  /// shard is rethrown on the calling thread after completion.
  void for_each_shard(int n_shards, int jobs,
                      const std::function<void(int)>& shard_fn);

  /// Process-wide pool shared by all simulations. Sized so that at least
  /// max(hardware, OAQ_JOBS, 4) executors (pool workers + the caller) are
  /// available — the floor keeps multi-thread determinism tests honest on
  /// small CI machines.
  [[nodiscard]] static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Half-open item range covered by shard `s` of `n_shards` over `n_items`:
/// contiguous, exhaustive, and balanced to within one item.
[[nodiscard]] constexpr std::pair<std::int64_t, std::int64_t> shard_range(
    std::int64_t n_items, int n_shards, int s) {
  const auto shards = static_cast<std::int64_t>(n_shards);
  return {n_items * s / shards, n_items * (s + 1) / shards};
}

/// Wall-clock profile of one parallel_reduce call: how long each shard
/// waited for an executor (queue wait, from dispatch to shard start) and
/// ran, plus the sequential merge and the whole call. Filled when a
/// profile pointer is passed to `parallel_reduce`; shard entries are
/// written by the worker that runs the shard (one writer per slot, no
/// synchronization needed) and kept in shard order.
///
/// Unlike the reduction *results*, wall times are not deterministic — the
/// profile is a performance observation, emitted in the repo's BENCH_JSON
/// style by `write_bench_json`.
struct ReduceProfile {
  struct ShardTiming {
    double queue_wait_s = 0.0;
    double run_s = 0.0;
  };
  int jobs_resolved = 0;  ///< executors actually used
  int shards_used = 0;    ///< after the n_items clamp
  double total_s = 0.0;   ///< whole parallel_reduce call
  double seed_s = 0.0;    ///< SeedFreezeHook seed+freeze, before fan-out
  double merge_s = 0.0;   ///< sequential shard-order fold
  std::vector<ShardTiming> shards;  ///< indexed by shard

  [[nodiscard]] double max_shard_run_s() const;
  [[nodiscard]] double sum_shard_run_s() const;
  [[nodiscard]] double sum_queue_wait_s() const;

  /// One-line machine-readable summary:
  ///   BENCH_JSON {"bench":<name>,"jobs":..,"shards":[...],...}
  /// (the caller prints the "BENCH_JSON " prefix convention via this).
  void write_bench_json(std::ostream& os, std::string_view bench_name) const;
};

/// Pre-fan-out hook for shared read-mostly state (e.g. the
/// SharedVisibilityCache seed/freeze protocol): `seed` builds the shared
/// state and `freeze` publishes it read-only. Both run back-to-back ON THE
/// CALLING THREAD before any shard's `map` is dispatched — in the pooled
/// path as well as the jobs<=1 inline path — so every shard observes the
/// frozen state without synchronizing, and a run produces the same shared
/// state for any worker count. Null members are skipped.
struct SeedFreezeHook {
  std::function<void()> seed;
  std::function<void()> freeze;
};

/// Map-reduce over [0, n_items): each shard builds a private `Accum` via
/// `map(begin, end, shard)`, and shards are folded left-to-right with
/// `merge(into, from)` on the calling thread. Deterministic in `jobs`
/// (see file header); `jobs <= 1` runs fully inline. A non-null `profile`
/// receives wall-clock timings (which never influence the result). A
/// non-null `hook` runs seed-then-freeze on the calling thread before any
/// shard starts (timed into profile->seed_s).
template <typename Accum, typename MapFn, typename MergeFn>
[[nodiscard]] Accum parallel_reduce(std::int64_t n_items, int n_shards,
                                    int jobs, MapFn&& map, MergeFn&& merge,
                                    ReduceProfile* profile = nullptr,
                                    const SeedFreezeHook* hook = nullptr) {
  using Clock = std::chrono::steady_clock;
  const auto seconds_between = [](Clock::time_point a, Clock::time_point b) {
    return std::chrono::duration<double>(b - a).count();
  };

  OAQ_REQUIRE(n_items > 0, "parallel_reduce needs at least one item");
  OAQ_REQUIRE(n_shards > 0, "parallel_reduce needs at least one shard");
  if (n_shards > n_items) n_shards = static_cast<int>(n_items);
  jobs = std::min(resolve_jobs(jobs), n_shards);

  const auto t_start = Clock::now();
  if (profile != nullptr) {
    profile->jobs_resolved = jobs;
    profile->shards_used = n_shards;
    profile->seed_s = 0.0;
    profile->merge_s = 0.0;
    profile->shards.assign(static_cast<std::size_t>(n_shards), {});
  }

  if (hook != nullptr) {
    if (hook->seed) hook->seed();
    if (hook->freeze) hook->freeze();
    if (profile != nullptr) {
      profile->seed_s = seconds_between(t_start, Clock::now());
    }
  }
  // Shard timings start after the hook: shard 0's inline run_s must not
  // absorb the seed/freeze wall (it is reported separately as seed_s).
  const auto t_dispatch = Clock::now();

  if (jobs <= 1) {
    auto [lo, hi] = shard_range(n_items, n_shards, 0);
    Accum acc = map(lo, hi, 0);
    if (profile != nullptr) {
      profile->shards[0].run_s = seconds_between(t_dispatch, Clock::now());
    }
    for (int s = 1; s < n_shards; ++s) {
      auto [b, e] = shard_range(n_items, n_shards, s);
      const auto t_map = Clock::now();
      Accum part = map(b, e, s);
      const auto t_merge = Clock::now();
      merge(acc, std::move(part));
      if (profile != nullptr) {
        auto& timing = profile->shards[static_cast<std::size_t>(s)];
        timing.run_s = seconds_between(t_map, t_merge);
        profile->merge_s += seconds_between(t_merge, Clock::now());
      }
    }
    if (profile != nullptr) {
      profile->total_s = seconds_between(t_start, Clock::now());
    }
    return acc;
  }

  std::vector<std::optional<Accum>> parts(static_cast<std::size_t>(n_shards));
  ThreadPool::global().for_each_shard(n_shards, jobs, [&](int s) {
    const auto t_shard = Clock::now();
    auto [b, e] = shard_range(n_items, n_shards, s);
    parts[static_cast<std::size_t>(s)].emplace(map(b, e, s));
    if (profile != nullptr) {
      auto& timing = profile->shards[static_cast<std::size_t>(s)];
      timing.queue_wait_s = seconds_between(t_dispatch, t_shard);
      timing.run_s = seconds_between(t_shard, Clock::now());
    }
  });
  const auto t_fold = Clock::now();
  Accum acc = std::move(*parts[0]);
  for (int s = 1; s < n_shards; ++s) {
    merge(acc, std::move(*parts[static_cast<std::size_t>(s)]));
  }
  if (profile != nullptr) {
    const auto t_end = Clock::now();
    profile->merge_s = seconds_between(t_fold, t_end);
    profile->total_s = seconds_between(t_start, t_end);
  }
  return acc;
}

}  // namespace oaq
