// Fixed-size thread pool and deterministic parallel reduction.
//
// The Monte-Carlo harnesses (oaq/montecarlo, oaq/campaign) and every sweep
// bench built on them fan work out through `parallel_reduce`. The contract
// that makes this safe for regression-tested simulations:
//
//   * The shard decomposition depends only on (n_items, n_shards), never on
//     the worker count, and shard results are merged sequentially in shard
//     order on the calling thread. A caller whose per-item computation is
//     order-independent (e.g. per-episode RNG streams derived by
//     `Rng::fork(item)`) therefore gets BIT-IDENTICAL results for any
//     `jobs` value — threads only change which worker computes a shard.
//   * `jobs == 1` never touches the pool: the map/merge loop runs inline on
//     the calling thread, exactly the pre-parallel serial path.
//
// Worker count resolution (`resolve_jobs`): an explicit positive request
// wins; otherwise the OAQ_JOBS environment variable; otherwise hardware
// concurrency. The shared pool is lazily created and lives for the process.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace oaq {

/// Detected hardware concurrency, at least 1.
[[nodiscard]] int hardware_jobs();

/// OAQ_JOBS environment override clamped to [1, 1024]; 0 when unset/invalid.
[[nodiscard]] int env_jobs();

/// Worker count for a run: `requested` if positive, else OAQ_JOBS, else
/// hardware concurrency.
[[nodiscard]] int resolve_jobs(int requested);

/// Fixed-size worker pool. Construction spawns the workers; destruction
/// drains the queue and joins them. Tasks must not block on other queued
/// tasks (shard pulling below never does).
class ThreadPool {
 public:
  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueue a task for any worker. Fire-and-forget; use `for_each_shard`
  /// when completion matters.
  void submit(std::function<void()> task);

  /// Run `shard_fn(s)` for every s in [0, n_shards) using at most `jobs`
  /// concurrent executors (the caller participates as one of them) and
  /// block until all shards completed. The first exception thrown by a
  /// shard is rethrown on the calling thread after completion.
  void for_each_shard(int n_shards, int jobs,
                      const std::function<void(int)>& shard_fn);

  /// Process-wide pool shared by all simulations. Sized so that at least
  /// max(hardware, OAQ_JOBS, 4) executors (pool workers + the caller) are
  /// available — the floor keeps multi-thread determinism tests honest on
  /// small CI machines.
  [[nodiscard]] static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Half-open item range covered by shard `s` of `n_shards` over `n_items`:
/// contiguous, exhaustive, and balanced to within one item.
[[nodiscard]] constexpr std::pair<std::int64_t, std::int64_t> shard_range(
    std::int64_t n_items, int n_shards, int s) {
  const auto shards = static_cast<std::int64_t>(n_shards);
  return {n_items * s / shards, n_items * (s + 1) / shards};
}

/// Map-reduce over [0, n_items): each shard builds a private `Accum` via
/// `map(begin, end, shard)`, and shards are folded left-to-right with
/// `merge(into, from)` on the calling thread. Deterministic in `jobs`
/// (see file header); `jobs <= 1` runs fully inline.
template <typename Accum, typename MapFn, typename MergeFn>
[[nodiscard]] Accum parallel_reduce(std::int64_t n_items, int n_shards,
                                    int jobs, MapFn&& map, MergeFn&& merge) {
  OAQ_REQUIRE(n_items > 0, "parallel_reduce needs at least one item");
  OAQ_REQUIRE(n_shards > 0, "parallel_reduce needs at least one shard");
  if (n_shards > n_items) n_shards = static_cast<int>(n_items);
  jobs = std::min(resolve_jobs(jobs), n_shards);

  if (jobs <= 1) {
    auto [lo, hi] = shard_range(n_items, n_shards, 0);
    Accum acc = map(lo, hi, 0);
    for (int s = 1; s < n_shards; ++s) {
      auto [b, e] = shard_range(n_items, n_shards, s);
      merge(acc, map(b, e, s));
    }
    return acc;
  }

  std::vector<std::optional<Accum>> parts(static_cast<std::size_t>(n_shards));
  ThreadPool::global().for_each_shard(n_shards, jobs, [&](int s) {
    auto [b, e] = shard_range(n_items, n_shards, s);
    parts[static_cast<std::size_t>(s)].emplace(map(b, e, s));
  });
  Accum acc = std::move(*parts[0]);
  for (int s = 1; s < n_shards; ++s) {
    merge(acc, std::move(*parts[static_cast<std::size_t>(s)]));
  }
  return acc;
}

}  // namespace oaq
