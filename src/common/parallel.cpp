#include "common/parallel.hpp"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <ostream>

namespace oaq {

double ReduceProfile::max_shard_run_s() const {
  double out = 0.0;
  for (const auto& s : shards) out = std::max(out, s.run_s);
  return out;
}

double ReduceProfile::sum_shard_run_s() const {
  double out = 0.0;
  for (const auto& s : shards) out += s.run_s;
  return out;
}

double ReduceProfile::sum_queue_wait_s() const {
  double out = 0.0;
  for (const auto& s : shards) out += s.queue_wait_s;
  return out;
}

void ReduceProfile::write_bench_json(std::ostream& os,
                                     std::string_view bench_name) const {
  os << "{\"bench\":\"" << bench_name << "\",\"jobs\":" << jobs_resolved
     << ",\"shards_used\":" << shards_used << ",\"total_s\":" << total_s
     << ",\"seed_s\":" << seed_s << ",\"merge_s\":" << merge_s
     << ",\"shard_run_sum_s\":" << sum_shard_run_s()
     << ",\"shard_run_max_s\":" << max_shard_run_s()
     << ",\"queue_wait_sum_s\":" << sum_queue_wait_s() << ",\"shards\":[";
  for (std::size_t s = 0; s < shards.size(); ++s) {
    os << (s == 0 ? "" : ",") << "{\"shard\":" << s
       << ",\"queue_wait_s\":" << shards[s].queue_wait_s
       << ",\"run_s\":" << shards[s].run_s << "}";
  }
  os << "]}";
}

int hardware_jobs() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

int env_jobs() {
  const char* raw = std::getenv("OAQ_JOBS");
  if (raw == nullptr || *raw == '\0') return 0;
  char* end = nullptr;
  const long parsed = std::strtol(raw, &end, 10);
  if (end == raw || *end != '\0' || parsed < 1) return 0;
  return static_cast<int>(std::min(parsed, 1024L));
}

int resolve_jobs(int requested) {
  if (requested > 0) return requested;
  const int from_env = env_jobs();
  return from_env > 0 ? from_env : hardware_jobs();
}

ThreadPool::ThreadPool(int threads) {
  const int n = std::max(threads, 0);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::for_each_shard(int n_shards, int jobs,
                                const std::function<void(int)>& shard_fn) {
  OAQ_REQUIRE(n_shards > 0, "for_each_shard needs at least one shard");
  OAQ_REQUIRE(jobs >= 1, "for_each_shard needs at least one executor");
  if (jobs == 1 || n_shards == 1 || size() == 0) {
    for (int s = 0; s < n_shards; ++s) shard_fn(s);
    return;
  }

  // Shared pull state. Helpers enqueued beyond pool capacity simply run
  // late, find the counter exhausted and return — work never waits on them,
  // because the caller also pulls until the counter is drained.
  struct State {
    explicit State(int total_shards, std::function<void(int)> fn)
        : total(total_shards), run(std::move(fn)) {}
    const int total;
    const std::function<void(int)> run;
    std::atomic<int> next{0};
    std::atomic<int> done{0};
    std::mutex m;
    std::condition_variable all_done;
    std::exception_ptr error;
  };
  auto st = std::make_shared<State>(n_shards, shard_fn);

  const auto pull = [st] {
    while (true) {
      const int s = st->next.fetch_add(1, std::memory_order_relaxed);
      if (s >= st->total) return;
      try {
        st->run(s);
      } catch (...) {
        std::lock_guard<std::mutex> lock(st->m);
        if (!st->error) st->error = std::current_exception();
      }
      if (st->done.fetch_add(1) + 1 == st->total) {
        std::lock_guard<std::mutex> lock(st->m);
        st->all_done.notify_all();
      }
    }
  };

  const int helpers = std::min(jobs - 1, n_shards - 1);
  for (int h = 0; h < helpers; ++h) submit(pull);
  pull();  // the calling thread is an executor too

  std::unique_lock<std::mutex> lock(st->m);
  st->all_done.wait(lock, [&] { return st->done.load() >= st->total; });
  if (st->error) std::rethrow_exception(st->error);
}

ThreadPool& ThreadPool::global() {
  // Workers plus the participating caller give at least
  // max(hardware, OAQ_JOBS, 4) concurrent executors.
  static ThreadPool pool(std::max({hardware_jobs(), env_jobs(), 4}) - 1);
  return pool;
}

}  // namespace oaq
