// Error handling primitives shared by every oaq-constellation library.
//
// Follows the C++ Core Guidelines (I.6, E.12): preconditions are checked at
// API boundaries and reported with exceptions carrying enough context to
// diagnose the violation without a debugger.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace oaq {

/// Base class for all errors thrown by the oaq-constellation libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a caller violates a documented precondition.
class PreconditionError : public Error {
 public:
  explicit PreconditionError(const std::string& what) : Error(what) {}
};

/// Thrown when an internal invariant fails (a bug in this library).
class InvariantError : public Error {
 public:
  explicit InvariantError(const std::string& what) : Error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_precondition(const char* expr, const char* file,
                                            int line, const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw PreconditionError(os.str());
}

[[noreturn]] inline void throw_invariant(const char* expr, const char* file,
                                         int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantError(os.str());
}

}  // namespace detail
}  // namespace oaq

/// Check a caller-facing precondition; throws oaq::PreconditionError.
#define OAQ_REQUIRE(expr, msg)                                               \
  do {                                                                       \
    if (!(expr))                                                             \
      ::oaq::detail::throw_precondition(#expr, __FILE__, __LINE__, (msg));   \
  } while (false)

/// Check an internal invariant; throws oaq::InvariantError.
#define OAQ_ENSURE(expr, msg)                                                \
  do {                                                                       \
    if (!(expr))                                                             \
      ::oaq::detail::throw_invariant(#expr, __FILE__, __LINE__, (msg));      \
  } while (false)
