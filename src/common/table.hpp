// ASCII table / data-series rendering for the benchmark harnesses.
//
// Every bench binary reproduces a paper table or figure by printing rows.
// TablePrinter renders aligned columns; SeriesPrinter renders an x column
// against several named y series (the textual analogue of a figure).
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace oaq {

/// A table cell: text, integer, or formatted double.
using Cell = std::variant<std::string, long long, double>;

/// Builds and renders a fixed-column ASCII table.
class TablePrinter {
 public:
  /// `precision` controls double formatting (fixed, that many decimals).
  explicit TablePrinter(std::vector<std::string> headers, int precision = 4);

  /// Appends one row; must match the header count.
  void add_row(std::vector<Cell> cells);

  /// Optional caption printed above the table.
  void set_caption(std::string caption) { caption_ = std::move(caption); }

  /// Renders to `os` with a header rule and aligned columns.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
  std::string caption_;
  int precision_;
};

/// Renders one x column against N named series, figure-style.
class SeriesPrinter {
 public:
  SeriesPrinter(std::string x_name, std::vector<std::string> series_names,
                int precision = 4);

  /// Appends a point: x plus one value per series.
  void add_point(double x, const std::vector<double>& ys);

  void set_caption(std::string caption) { caption_ = std::move(caption); }

  void print(std::ostream& os) const;

 private:
  std::string x_name_;
  std::vector<std::string> series_names_;
  std::vector<std::pair<double, std::vector<double>>> points_;
  std::string caption_;
  int precision_;
};

/// Formats a double in scientific notation with 2 significant decimals
/// (handy for failure-rate axes like 1e-05).
[[nodiscard]] std::string sci(double v);

}  // namespace oaq
