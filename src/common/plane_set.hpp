// A set of orbital-plane indices, wide enough for mega-constellations.
//
// Partition clauses and crosslink fault state historically addressed planes
// through a single 64-bit mask (bit p = plane p), which caps the engine at
// 64 planes — below a Starlink-class 72×22 shell, let alone a multi-shell
// composition. PlaneSet widens the addressable range to kMaxPlanes while
// staying implicitly constructible from a 64-bit mask, so every legacy
// call site (`FaultPlan::partition(0b1010, ...)`) keeps compiling — and
// keeps meaning — unchanged.
#pragma once

#include <array>
#include <cstdint>

namespace oaq {

/// Fixed-width bitset over global plane indices.
class PlaneSet {
 public:
  /// Hard cap on addressable planes across all shells of a constellation.
  static constexpr int kMaxPlanes = 128;

  constexpr PlaneSet() = default;
  /// Legacy mask: bit p = plane p, planes 64..127 absent. Intentionally
  /// implicit so pre-shell call sites read unchanged.
  constexpr PlaneSet(std::uint64_t low_mask)  // NOLINT(google-explicit-*)
      : words_{low_mask, 0} {}

  [[nodiscard]] static constexpr PlaneSet single(int plane) {
    PlaneSet s;
    s.set(plane);
    return s;
  }

  /// Out-of-range planes are ignored: a set can never name a plane the
  /// fault state tables cannot represent.
  constexpr void set(int plane) {
    if (plane >= 0 && plane < kMaxPlanes) {
      words_[static_cast<std::size_t>(plane / 64)] |=
          std::uint64_t{1} << (plane % 64);
    }
  }

  [[nodiscard]] constexpr bool test(int plane) const {
    return plane >= 0 && plane < kMaxPlanes &&
           ((words_[static_cast<std::size_t>(plane / 64)] >> (plane % 64)) &
            1u) != 0;
  }

  [[nodiscard]] constexpr bool empty() const {
    return words_[0] == 0 && words_[1] == 0;
  }

  /// Every addressable plane — partitioning it severs nothing.
  [[nodiscard]] constexpr bool all() const {
    return words_[0] == ~std::uint64_t{0} && words_[1] == ~std::uint64_t{0};
  }

  /// Highest member, or -1 when empty (sizes the fault state tables).
  [[nodiscard]] constexpr int max_plane() const {
    for (int p = kMaxPlanes - 1; p >= 0; --p) {
      if (test(p)) return p;
    }
    return -1;
  }

  /// Members translated up by `by` planes (shell-relative → global index
  /// resolution). Members shifted past kMaxPlanes are dropped; callers
  /// validate the range before shifting.
  [[nodiscard]] constexpr PlaneSet shifted_up(int by) const {
    PlaneSet out;
    for (int p = 0; p < kMaxPlanes; ++p) {
      if (test(p)) out.set(p + by);
    }
    return out;
  }

  /// The low 64-bit word — the legacy trace encoding of a partition
  /// (TraceEvent::v), kept for byte-compatibility with pre-shell traces.
  [[nodiscard]] constexpr std::uint64_t low_word() const { return words_[0]; }

  friend constexpr bool operator==(const PlaneSet&, const PlaneSet&) = default;

 private:
  std::array<std::uint64_t, 2> words_{};
};

}  // namespace oaq
