#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace oaq {

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::sem() const {
  return n_ ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

double RunningStat::ci95_halfwidth() const { return 1.959963984540054 * sem(); }

void RunningStat::merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * nb / (na + nb);
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

std::pair<double, double> ProportionEstimate::wilson95() const {
  if (n_ == 0) return {0.0, 1.0};
  const double z = 1.959963984540054;
  const double n = static_cast<double>(n_);
  const double p = value();
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return {std::max(0.0, center - half), std::min(1.0, center + half)};
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  OAQ_REQUIRE(hi > lo, "histogram range must be nonempty");
  OAQ_REQUIRE(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x) {
  ++total_;
  std::size_t bin;
  if (x < lo_) {
    ++underflow_;
    bin = 0;
  } else if (x >= hi_) {
    ++overflow_;
    bin = counts_.size() - 1;
  } else {
    bin = static_cast<std::size_t>((x - lo_) / width_);
    bin = std::min(bin, counts_.size() - 1);
  }
  ++counts_[bin];
}

void Histogram::merge(const Histogram& other) {
  OAQ_REQUIRE(lo_ == other.lo_ && hi_ == other.hi_ &&
                  counts_.size() == other.counts_.size(),
              "histogram merge needs identical layouts");
  for (std::size_t b = 0; b < counts_.size(); ++b) counts_[b] += other.counts_[b];
  total_ += other.total_;
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
}

std::uint64_t Histogram::count(std::size_t bin) const {
  OAQ_REQUIRE(bin < counts_.size(), "histogram bin out of range");
  return counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  OAQ_REQUIRE(bin < counts_.size(), "histogram bin out of range");
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const { return bin_lo(bin) + width_; }

double Histogram::quantile(double q) const {
  OAQ_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const double next = cum + static_cast<double>(counts_[b]);
    if (next >= target) {
      const double frac =
          counts_[b] ? (target - cum) / static_cast<double>(counts_[b]) : 0.0;
      return bin_lo(b) + frac * width_;
    }
    cum = next;
  }
  return hi_;
}

double DiscretePmf::probability(int outcome) const {
  if (total_ <= 0.0) return 0.0;
  const auto it = weights_.find(outcome);
  return it == weights_.end() ? 0.0 : it->second / total_;
}

double DiscretePmf::tail_probability(int x) const {
  if (total_ <= 0.0) return 0.0;
  double sum = 0.0;
  for (auto it = weights_.lower_bound(x); it != weights_.end(); ++it) {
    sum += it->second;
  }
  return sum / total_;
}

}  // namespace oaq
