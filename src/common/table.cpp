#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace oaq {
namespace {

std::string format_cell(const Cell& cell, int precision) {
  struct Visitor {
    int precision;
    std::string operator()(const std::string& s) const { return s; }
    std::string operator()(long long v) const { return std::to_string(v); }
    std::string operator()(double v) const {
      std::ostringstream os;
      os << std::fixed << std::setprecision(precision) << v;
      return os.str();
    }
  };
  return std::visit(Visitor{precision}, cell);
}

void print_aligned(std::ostream& os, const std::vector<std::string>& headers,
                   const std::vector<std::vector<std::string>>& rows,
                   const std::string& caption) {
  std::vector<std::size_t> widths(headers.size());
  for (std::size_t c = 0; c < headers.size(); ++c) widths[c] = headers[c].size();
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  if (!caption.empty()) os << caption << '\n';
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "  " : "") << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    os << '\n';
  };
  print_row(headers);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += widths[c] + (c ? 2 : 0);
  }
  os << std::string(rule, '-') << '\n';
  for (const auto& row : rows) print_row(row);
}

}  // namespace

TablePrinter::TablePrinter(std::vector<std::string> headers, int precision)
    : headers_(std::move(headers)), precision_(precision) {
  OAQ_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void TablePrinter::add_row(std::vector<Cell> cells) {
  OAQ_REQUIRE(cells.size() == headers_.size(),
              "row width does not match header count");
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (const auto& cell : row) r.push_back(format_cell(cell, precision_));
    rendered.push_back(std::move(r));
  }
  print_aligned(os, headers_, rendered, caption_);
}

SeriesPrinter::SeriesPrinter(std::string x_name,
                             std::vector<std::string> series_names,
                             int precision)
    : x_name_(std::move(x_name)), series_names_(std::move(series_names)),
      precision_(precision) {
  OAQ_REQUIRE(!series_names_.empty(), "series printer needs >= 1 series");
}

void SeriesPrinter::add_point(double x, const std::vector<double>& ys) {
  OAQ_REQUIRE(ys.size() == series_names_.size(),
              "point arity does not match series count");
  points_.emplace_back(x, ys);
}

void SeriesPrinter::print(std::ostream& os) const {
  std::vector<std::string> headers;
  headers.push_back(x_name_);
  headers.insert(headers.end(), series_names_.begin(), series_names_.end());
  std::vector<std::vector<std::string>> rows;
  rows.reserve(points_.size());
  for (const auto& [x, ys] : points_) {
    std::vector<std::string> row;
    row.push_back(sci(x));
    for (double y : ys) row.push_back(format_cell(y, precision_));
    rows.push_back(std::move(row));
  }
  print_aligned(os, headers, rows, caption_);
}

std::string sci(double v) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(2) << v;
  return os.str();
}

}  // namespace oaq
