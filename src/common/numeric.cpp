#include "common/numeric.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/error.hpp"

namespace oaq {
namespace {

double simpson(double a, double fa, double b, double fb, double fm) {
  return (b - a) / 6.0 * (fa + 4.0 * fm + fb);
}

double adaptive_step(const Integrand& f, double a, double fa, double b,
                     double fb, double m, double fm, double whole, double tol,
                     int depth) {
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = f(lm);
  const double frm = f(rm);
  const double left = simpson(a, fa, m, fm, flm);
  const double right = simpson(m, fm, b, fb, frm);
  const double delta = left + right - whole;
  if (depth <= 0 || std::abs(delta) <= 15.0 * tol) {
    return left + right + delta / 15.0;
  }
  return adaptive_step(f, a, fa, m, fm, lm, flm, left, 0.5 * tol, depth - 1) +
         adaptive_step(f, m, fm, b, fb, rm, frm, right, 0.5 * tol, depth - 1);
}

// Abscissae/weights for Gauss–Legendre on [-1, 1], positive half; the
// negative half mirrors. Generated to 16 significant digits.
struct GaussTable {
  const double* x;
  const double* w;
  int half;   // number of positive-abscissa points
  bool has_zero;
};

constexpr std::array<double, 2> kX4 = {0.3399810435848563, 0.8611363115940526};
constexpr std::array<double, 2> kW4 = {0.6521451548625461, 0.3478548451374538};

constexpr std::array<double, 4> kX8 = {0.1834346424956498, 0.5255324099163290,
                                       0.7966664774136267, 0.9602898564975363};
constexpr std::array<double, 4> kW8 = {0.3626837833783620, 0.3137066458778873,
                                       0.2223810344533745, 0.1012285362903763};

constexpr std::array<double, 8> kX16 = {
    0.0950125098376374, 0.2816035507792589, 0.4580167776572274,
    0.6178762444026438, 0.7554044083550030, 0.8656312023878318,
    0.9445750230732326, 0.9894009349916499};
constexpr std::array<double, 8> kW16 = {
    0.1894506104550685, 0.1826034150449236, 0.1691565193950025,
    0.1495959888165767, 0.1246289712555339, 0.0951585116824928,
    0.0622535239386479, 0.0271524594117541};

constexpr std::array<double, 16> kX32 = {
    0.0483076656877383, 0.1444719615827965, 0.2392873622521371,
    0.3318686022821277, 0.4213512761306353, 0.5068999089322294,
    0.5877157572407623, 0.6630442669302152, 0.7321821187402897,
    0.7944837959679424, 0.8493676137325700, 0.8963211557660521,
    0.9349060759377397, 0.9647622555875064, 0.9856115115452684,
    0.9972638618494816};
constexpr std::array<double, 16> kW32 = {
    0.0965400885147278, 0.0956387200792749, 0.0938443990808046,
    0.0911738786957639, 0.0876520930044038, 0.0833119242269467,
    0.0781938957870703, 0.0723457941088485, 0.0658222227763618,
    0.0586840934785355, 0.0509980592623762, 0.0428358980222267,
    0.0342738629130214, 0.0253920653092621, 0.0162743947309057,
    0.0070186100094701};

}  // namespace

double integrate(const Integrand& f, double a, double b, double tol) {
  OAQ_REQUIRE(tol > 0.0, "integration tolerance must be positive");
  if (a == b) return 0.0;
  double sign = 1.0;
  if (a > b) {
    std::swap(a, b);
    sign = -1.0;
  }
  const double fa = f(a);
  const double fb = f(b);
  const double m = 0.5 * (a + b);
  const double fm = f(m);
  const double whole = simpson(a, fa, b, fb, fm);
  return sign * adaptive_step(f, a, fa, b, fb, m, fm, whole, tol, 48);
}

double integrate_gauss(const Integrand& f, double a, double b, int order) {
  GaussTable table{};
  switch (order) {
    case 4: table = {kX4.data(), kW4.data(), 2, false}; break;
    case 8: table = {kX8.data(), kW8.data(), 4, false}; break;
    case 16: table = {kX16.data(), kW16.data(), 8, false}; break;
    case 32: table = {kX32.data(), kW32.data(), 16, false}; break;
    case 64: {
      // Composite: two 32-point panels.
      const double m = 0.5 * (a + b);
      return integrate_gauss(f, a, m, 32) + integrate_gauss(f, m, b, 32);
    }
    default:
      OAQ_REQUIRE(false, "unsupported Gauss-Legendre order");
  }
  const double c = 0.5 * (a + b);
  const double h = 0.5 * (b - a);
  double sum = 0.0;
  for (int i = 0; i < table.half; ++i) {
    sum += table.w[i] * (f(c - h * table.x[i]) + f(c + h * table.x[i]));
  }
  return h * sum;
}

double find_root(const Integrand& f, double a, double b, double tol) {
  double fa = f(a);
  double fb = f(b);
  OAQ_REQUIRE(fa * fb <= 0.0, "find_root requires a bracketing interval");
  if (fa == 0.0) return a;
  if (fb == 0.0) return b;
  if (std::abs(fa) < std::abs(fb)) {
    std::swap(a, b);
    std::swap(fa, fb);
  }
  double c = a, fc = fa, d = c;
  bool mflag = true;
  for (int iter = 0; iter < 200; ++iter) {
    if (fb == 0.0 || std::abs(b - a) < tol) return b;
    double s;
    if (fa != fc && fb != fc) {
      // Inverse quadratic interpolation.
      s = a * fb * fc / ((fa - fb) * (fa - fc)) +
          b * fa * fc / ((fb - fa) * (fb - fc)) +
          c * fa * fb / ((fc - fa) * (fc - fb));
    } else {
      s = b - fb * (b - a) / (fb - fa);  // secant
    }
    const double lo = (3.0 * a + b) / 4.0;
    const bool out_of_range = !((s > std::min(lo, b)) && (s < std::max(lo, b)));
    const bool slow = mflag ? std::abs(s - b) >= std::abs(b - c) / 2.0
                            : std::abs(s - b) >= std::abs(c - d) / 2.0;
    const bool tiny = mflag ? std::abs(b - c) < tol : std::abs(c - d) < tol;
    if (out_of_range || slow || tiny) {
      s = 0.5 * (a + b);  // bisection
      mflag = true;
    } else {
      mflag = false;
    }
    const double fs = f(s);
    d = c;
    c = b;
    fc = fb;
    if (fa * fs < 0.0) {
      b = s;
      fb = fs;
    } else {
      a = s;
      fa = fs;
    }
    if (std::abs(fa) < std::abs(fb)) {
      std::swap(a, b);
      std::swap(fa, fb);
    }
  }
  return b;
}

std::vector<double> linspace(double lo, double hi, int n) {
  OAQ_REQUIRE(n >= 2, "linspace needs at least two points");
  std::vector<double> out(static_cast<std::size_t>(n));
  const double step = (hi - lo) / (n - 1);
  for (int i = 0; i < n; ++i) out[static_cast<std::size_t>(i)] = lo + step * i;
  out.back() = hi;
  return out;
}

std::vector<double> logspace(double lo, double hi, int n) {
  OAQ_REQUIRE(lo > 0.0 && hi > 0.0, "logspace needs positive bounds");
  auto grid = linspace(std::log(lo), std::log(hi), n);
  for (auto& g : grid) g = std::exp(g);
  grid.back() = hi;
  return grid;
}

bool approx_equal(double a, double b, double rtol, double atol) {
  return std::abs(a - b) <= atol + rtol * std::max(std::abs(a), std::abs(b));
}

}  // namespace oaq
