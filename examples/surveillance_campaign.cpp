// Surveillance campaign: a 3.5-year mission over one orbital plane.
//
// Satellites fail at rate λ; in-orbit spares, the threshold-triggered
// ground launch and the scheduled restoration keep the plane alive. RF
// signals (Poisson arrivals, exponential durations) occur at a 30°N target
// on the plane's centerline; each is handled by OAQ and, for comparison,
// BAQ. The example ties together the fault, analytic and protocol layers.
#include <iomanip>
#include <iostream>

#include "common/table.hpp"
#include "fault/plane_capacity.hpp"
#include "oaq/montecarlo.hpp"

using namespace oaq;

int main() {
  // Mission model.
  PlaneDependability dependability;
  dependability.satellite_failure_rate = Rate::per_hour(7e-5);
  dependability.policy.ground_threshold = 10;
  const Duration mission = Duration::hours(30000);  // one scheduled cycle

  // Capacity history for this mission (seeded: reproducible).
  const auto trace = simulate_capacity_trace(dependability, 2003, mission);
  std::cout << "=== Mission capacity timeline (lambda = 7e-5/hr, eta = 10) "
               "===\n";
  int min_k = 14;
  for (const auto& ev : trace) {
    min_k = std::min(min_k, ev.active);
  }
  std::cout << trace.size() << " capacity events over "
            << mission.to_days() << " days; minimum capacity k = " << min_k
            << "\nFirst events:\n";
  for (std::size_t i = 0; i < std::min<std::size_t>(trace.size(), 8); ++i) {
    std::cout << "  day " << std::setw(7) << std::fixed
              << std::setprecision(1) << trace[i].at.since_origin().to_days()
              << "  k -> " << trace[i].active << '\n';
  }

  // Signals arrive as a Poisson process; each sees the plane capacity of
  // its arrival instant (PASTA). Evaluate the QoS of every signal with the
  // protocol Monte-Carlo, one episode per signal.
  const Rate signal_rate = Rate::per_hour(1.0 / 50.0);  // one per ~2 days
  const Rate mu = Rate::per_minute(0.3);
  ProtocolConfig protocol;
  protocol.computation_cap = Duration::seconds(6);

  Rng rng(77);
  DiscretePmf oaq_levels, baq_levels;
  int signals = 0;
  TimePoint t = TimePoint::origin();
  std::size_t cursor = 0;
  const PlaneGeometry geometry;
  while (true) {
    t = t + rng.exponential(signal_rate);
    if (t.since_origin() >= mission) break;
    ++signals;
    while (cursor + 1 < trace.size() && trace[cursor + 1].at <= t) ++cursor;
    const int k = trace[cursor].active;
    if (k == 0) {
      oaq_levels.add(0);
      baq_levels.add(0);
      continue;
    }
    const Duration phase =
        rng.uniform(Duration::zero(), geometry.tr(k));
    const AnalyticSchedule schedule(geometry, k, phase);
    const Duration duration = rng.exponential(mu);
    const TimePoint start = TimePoint::at(Duration::minutes(60));
    for (const bool oaq : {true, false}) {
      const EpisodeEngine engine(schedule, protocol, oaq);
      Rng ep = rng.fork(static_cast<std::uint64_t>(signals) * 2 + oaq);
      const auto r = engine.run(start, duration, ep);
      (oaq ? oaq_levels : baq_levels)
          .add(to_int(r.alert_delivered ? r.level : QosLevel::kMissed));
    }
  }

  std::cout << "\n=== " << signals << " signals processed ===\n";
  TablePrinter table({"scheme", "P(Y=0)", "P(Y=1)", "P(Y=2)", "P(Y=3)",
                      "P(Y>=2)"},
                     4);
  for (const bool oaq : {true, false}) {
    const auto& pmf = oaq ? oaq_levels : baq_levels;
    table.add_row({std::string(oaq ? "OAQ" : "BAQ"), pmf.probability(0),
                   pmf.probability(1), pmf.probability(2), pmf.probability(3),
                   pmf.tail_probability(2)});
  }
  table.print(std::cout);
  std::cout << "\nOver the same failure history and the same signals, OAQ\n"
               "delivers high-end results (Y >= 2) far more often than the\n"
               "baseline — the paper's Fig. 9 story on a single mission.\n";
  return 0;
}
