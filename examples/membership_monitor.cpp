// Membership monitor: the group-membership extension (paper §5) watching
// an orbital plane degrade in real time.
//
// Nine satellites of a plane run the ring-heartbeat membership service
// over their crosslinks. Satellites fail silently one by one; the example
// prints when each survivor's view converges and how the coordination
// chain (next-visitor routing) re-forms around the failures.
#include <iomanip>
#include <iostream>

#include "net/membership.hpp"
#include "net/router.hpp"

using namespace oaq;

int main() {
  Simulator sim;
  CrosslinkNetwork::Options links;
  links.min_delay = Duration::seconds(0.5);
  links.max_delay = Duration::seconds(2.0);
  CrosslinkNetwork net(sim, links, Rng(2003));

  std::vector<SatelliteId> ring;
  for (int s = 0; s < 9; ++s) ring.push_back({0, s});
  MembershipConfig config;
  config.heartbeat_period = Duration::seconds(30);
  config.suspicion_timeout = Duration::seconds(120);
  MembershipGroup group(sim, net, ring, config);

  std::cout << "=== Ring membership over a degrading 9-satellite plane ===\n"
            << "heartbeat 30 s, suspicion timeout 120 s, crosslink delay "
               "0.5-2 s\n\n";

  auto print_view = [&](const char* when) {
    const auto& view = group.node({0, 0}).live_view();
    std::cout << std::setw(10) << when << "  view of sat 0: {";
    bool first = true;
    for (const auto id : view) {
      std::cout << (first ? "" : ",") << id.slot;
      first = false;
    }
    std::cout << "}  next visitor after sat 0: slot "
              << group.node({0, 0}).live_predecessor().slot << '\n';
  };

  sim.run_until(TimePoint::at(Duration::minutes(2)));
  print_view("t=2min");

  // Failures at minutes 5 and 18 (adjacent pair at 25/26).
  net.fail_silent(Address::sat({0, 8}));
  std::cout << "\n-- sat 8 fails silently at t=5min --\n";
  sim.run_until(TimePoint::at(Duration::minutes(10)));
  print_view("t=10min");

  sim.run_until(TimePoint::at(Duration::minutes(18)));
  net.fail_silent(Address::sat({0, 4}));
  std::cout << "\n-- sat 4 fails silently at t=18min --\n";
  sim.run_until(TimePoint::at(Duration::minutes(25)));
  print_view("t=25min");

  net.fail_silent(Address::sat({0, 5}));
  net.fail_silent(Address::sat({0, 6}));
  std::cout << "\n-- sats 5 and 6 (adjacent) fail at t=25min --\n";
  sim.run_until(TimePoint::at(Duration::minutes(35)));
  print_view("t=35min");

  std::set<SatelliteId> actually_live(ring.begin(), ring.end());
  for (int s : {8, 4, 5, 6}) actually_live.erase({0, s});
  std::cout << "\nall survivors converged on the true membership: "
            << (group.converged(actually_live) ? "yes" : "NO") << '\n'
            << "\nWhy it matters for OAQ: the chain's \"next visitor\" is\n"
               "derived from the live view, so a coordination request is\n"
               "never addressed to a dead peer — the protocol keeps its\n"
               "delivery guarantee either way, but skipping dead peers\n"
               "recovers the sequential-dual accuracy and most of the\n"
               "alert latency (see bench/ablation_membership).\n";
  return 0;
}
