// Constellation trade study: how many satellites per plane does a design
// need so that its QoS degrades gracefully?
//
// Sweeps the per-plane satellite count and evaluates, for each design:
//   * the overlap threshold k* (smallest capacity with footprint overlap),
//   * whole-Earth coverage of the full design,
//   * analytic OAQ/BAQ QoS after losing 0, 2 and 4 satellites per plane.
#include <iostream>

#include "analytic/qos_model.hpp"
#include "common/table.hpp"
#include "orbit/coverage.hpp"

using namespace oaq;

int main() {
  std::cout << "=== Constellation designer: per-plane capacity trade study "
               "(theta = 90 min, Tc = 9 min, tau = 5, mu = 0.5, nu = 30) "
               "===\n\n";
  QosModelParams params;
  const PlaneGeometry geometry;
  const QosModel model(geometry, params);

  TablePrinter table({"sats/plane", "k* overlap", "losses", "k", "mode",
                      "OAQ P(Y>=2)", "BAQ P(Y>=2)", "OAQ P(miss)"},
                     3);
  for (int design : {16, 14, 12, 10}) {
    for (int losses : {0, 2, 4}) {
      const int k = design - losses;
      if (k <= 0) continue;
      table.add_row(
          {static_cast<long long>(design),
           static_cast<long long>(geometry.min_overlapping_k()),
           static_cast<long long>(losses), static_cast<long long>(k),
           std::string(geometry.overlapping(k) ? "overlap" : "underlap"),
           model.conditional_tail(k, 2, Scheme::kOaq),
           model.conditional_tail(k, 2, Scheme::kBaq),
           model.conditional(k, 0, Scheme::kOaq)});
    }
  }
  table.print(std::cout);

  std::cout << "\nGlobal coverage of candidate full designs (snapshot):\n";
  TablePrinter cov({"planes", "sats/plane", "covered", ">=2-fold"}, 3);
  for (int planes : {6, 7, 8}) {
    for (int sats : {12, 14}) {
      ConstellationDesign d;
      d.num_planes = planes;
      d.sats_per_plane = sats;
      const Constellation c(d);
      const auto g = CoverageAnalyzer(c).global(Duration::zero(), 24, 72);
      cov.add_row({static_cast<long long>(planes),
                   static_cast<long long>(sats), g.covered_fraction,
                   g.overlap_fraction});
    }
  }
  cov.print(std::cout);

  std::cout << "\nReading: designs keep high-end QoS while k stays above "
               "the overlap threshold k*; below it, only OAQ's sequential "
               "coordination retains level-2 service.\n";
  return 0;
}
