// Quickstart: build the reference constellation, degrade one plane past
// its spares, and watch the OAQ protocol coordinate a geolocation.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "oaq/episode.hpp"
#include "oaq/montecarlo.hpp"

using namespace oaq;

int main() {
  // 1. The paper's reference RF-geolocation constellation:
  //    7 planes x (14 active + 2 in-orbit spares), 90-minute orbits,
  //    9-minute footprint coverage time.
  auto constellation = Constellation::reference();
  std::cout << "Reference constellation: " << constellation.num_planes()
            << " planes, " << constellation.total_active()
            << " active satellites\n";

  // 2. Structural degradation: plane 0 loses satellites past its spares
  //    and re-phases the 9 survivors. Tr[9] = 10 min > Tc = 9 min: the
  //    footprints underlap and simultaneous coverage is gone.
  constellation.plane(0).set_active_count(9);
  std::cout << "Plane 0 degraded to k = 9: revisit time "
            << constellation.plane(0).revisit_time().to_minutes()
            << " min vs coverage time 9 min -> underlapping\n\n";

  // 3. One signal episode under OAQ, against the degraded plane's
  //    timing-diagram schedule (worst case: emitter on the centerline).
  const PlaneGeometry geometry;
  const AnalyticSchedule schedule(geometry, 9, Duration::zero());
  ProtocolConfig config;       // tau = 5 min, delta = 12 s, Tg = 6 s
  config.computation_cap = Duration::seconds(6);
  const EpisodeEngine engine(schedule, config, /*opportunity_adaptive=*/true);

  Rng rng(7);
  // Signal starts at t = 2 min (inside a pass) and lasts 20 minutes.
  const auto result = engine.run(TimePoint::at(Duration::minutes(2)),
                                 Duration::minutes(20), rng);

  std::cout << "Episode: detected=" << result.detected
            << ", level=" << to_string(result.level)
            << ", chain length=" << result.chain_length
            << ", coordination requests=" << result.coordination_requests
            << "\n         alert sent at t+"
            << (result.first_alert_sent - result.detection).to_minutes()
            << " min (deadline " << config.tau.to_minutes()
            << "), timely=" << result.timely
            << ", reported error=" << result.reported_error_km << " km\n\n";

  // 4. The same plane, many episodes: OAQ vs BAQ conditional QoS.
  for (const bool oaq : {true, false}) {
    QosSimulationConfig mc;
    mc.k = 9;
    mc.opportunity_adaptive = oaq;
    mc.episodes = 5000;
    mc.protocol = config;
    const auto sim = simulate_qos(mc);
    std::cout << (oaq ? "OAQ" : "BAQ") << " @ k=9:  P(missed)="
              << sim.probability(QosLevel::kMissed)
              << "  P(single)=" << sim.probability(QosLevel::kSingle)
              << "  P(seq-dual)="
              << sim.probability(QosLevel::kSequentialDual) << '\n';
  }
  std::cout << "\nOAQ turns a share of single-coverage deliveries into\n"
               "sequential-dual ones — accuracy recovered from the\n"
               "constellation's own mobility, with no new hardware.\n";
  return 0;
}
