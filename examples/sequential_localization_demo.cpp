// Sequential localization, end to end: real orbits, synthetic Doppler
// measurements, iterative weighted least squares — the estimation substrate
// the OAQ protocol coordinates (paper refs [4, 5]).
#include <iomanip>
#include <iostream>

#include "geoloc/crlb.hpp"
#include "geoloc/sequential.hpp"

using namespace oaq;

int main() {
  std::cout << "=== Sequential localization demo ===\n\n";
  // A ground emitter at 30N, 31E transmitting at 400 MHz.
  Emitter emitter;
  emitter.position = GeoPoint::from_degrees(30.0, 31.0);
  emitter.carrier_hz = 400.0e6;
  emitter.start = TimePoint::origin();
  std::cout << "True emitter: 30.000N 31.000E, carrier 400 MHz (unknown to "
               "the estimator)\n\n";

  const DopplerModel model(/*earth_rotation=*/true);
  Rng rng(2003);
  SequentialLocalizer localizer;
  std::vector<FoaMeasurement> all;

  const Duration revisit = Duration::minutes(9);  // Tr for k = 10
  std::cout << std::fixed << std::setprecision(3);
  for (int pass = 0; pass < 4; ++pass) {
    // Satellite `pass` trails its predecessor by one slot; Earth rotation
    // shifts each ground track, giving geometric diversity.
    const Orbit orbit = Orbit::circular_with_period(
        Duration::minutes(90), deg2rad(85.0), deg2rad(30.0),
        -2.0 * kPi * pass / 10.0);
    const auto window_start = Duration::minutes(5) + revisit * pass;
    const auto window_end = Duration::minutes(13) + revisit * pass;
    const auto batch = model.take_measurements(
        orbit, {0, pass}, emitter,
        measurement_epochs(window_start, window_end, 25), deg2rad(18.0),
        /*sigma_hz=*/5.0, rng);
    if (batch.empty()) continue;
    all.insert(all.end(), batch.begin(), batch.end());

    const auto& est = localizer.incorporate(batch);
    const double err = great_circle_km(est.position, emitter.position);
    const double bound =
        crlb_position_km(all, emitter.position, emitter.carrier_hz, true);
    std::cout << "pass " << pass + 1 << " (sat slot " << pass << ", "
              << batch.size() << " Doppler measurements):\n"
              << "  estimate  " << est.position.lat_deg() << "N "
              << est.position.lon_deg() << "E, carrier "
              << est.carrier_hz / 1e6 << " MHz\n"
              << "  error " << err << " km, posterior 1-sigma "
              << est.position_error_1sigma_km << " km, CRLB " << bound
              << " km, iterations " << est.iterations << '\n';
  }

  std::cout << "\nEach revisiting satellite tightens the fix — exactly the "
               "accuracy-improvement iteration that the OAQ coordination "
               "chain schedules across peers (paper section 3.1).\n";
  return 0;
}
